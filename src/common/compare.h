#pragma once

#include <string_view>

/// \file compare.h
/// The comparison-operator vocabulary shared by the predicate layer
/// (exec/operators.h) and the storage layer (zone-map refutation in
/// storage/encoding.h). Lives in common/ so storage does not depend on
/// exec.

namespace nipo {

/// Comparison operator of a predicate.
enum class CompareOp : int { kLt, kLe, kGt, kGe, kEq, kNe };

std::string_view CompareOpToString(CompareOp op);

/// \brief Evaluates `lhs op rhs` on doubles (columns are converted; all
/// column domains in this repository are exactly representable).
inline bool EvaluateCompare(double lhs, CompareOp op, double rhs) {
  switch (op) {
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
  }
  return false;
}

}  // namespace nipo
