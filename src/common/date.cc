#include "common/date.h"

#include <cstdio>

/// \file date.cc
/// Proleptic-Gregorian calendar arithmetic behind date.h: leap-year and
/// month-length rules plus the Hinnant days-from-civil / civil-from-days
/// round trip and ISO formatting.

namespace nipo {

bool IsLeapYear(int32_t year) {
  return year % 4 == 0 && (year % 100 != 0 || year % 400 == 0);
}

int32_t DaysInMonth(int32_t year, int32_t month) {
  static constexpr int32_t kDays[12] = {31, 28, 31, 30, 31, 30,
                                        31, 31, 30, 31, 30, 31};
  if (month == 2 && IsLeapYear(year)) return 29;
  return kDays[month - 1];
}

DayNumber DateToDayNumber(const Date& date) {
  // Hinnant's days_from_civil.
  int32_t y = date.year;
  const int32_t m = date.month;
  const int32_t d = date.day;
  y -= m <= 2;
  const int32_t era = (y >= 0 ? y : y - 399) / 400;
  const uint32_t yoe = static_cast<uint32_t>(y - era * 400);           // [0,399]
  const uint32_t doy =
      static_cast<uint32_t>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const uint32_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;          // [0,146096]
  return era * 146097 + static_cast<int32_t>(doe) - 719468;
}

Date DayNumberToDate(DayNumber days) {
  // Hinnant's civil_from_days.
  int32_t z = days + 719468;
  const int32_t era = (z >= 0 ? z : z - 146096) / 146097;
  const uint32_t doe = static_cast<uint32_t>(z - era * 146097);        // [0,146096]
  const uint32_t yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;           // [0,399]
  const int32_t y = static_cast<int32_t>(yoe) + era * 400;
  const uint32_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);        // [0,365]
  const uint32_t mp = (5 * doy + 2) / 153;                             // [0,11]
  const uint32_t d = doy - (153 * mp + 2) / 5 + 1;                     // [1,31]
  const uint32_t m = mp + (mp < 10 ? 3 : static_cast<uint32_t>(-9));   // [1,12]
  Date out;
  out.year = y + (m <= 2);
  out.month = static_cast<int32_t>(m);
  out.day = static_cast<int32_t>(d);
  return out;
}

Result<Date> ParseDate(const std::string& text) {
  int year = 0, month = 0, day = 0;
  char trailing = '\0';
  const int matched =
      std::sscanf(text.c_str(), "%d-%d-%d%c", &year, &month, &day, &trailing);
  if (matched != 3) {
    return Status::InvalidArgument("expected YYYY-MM-DD, got '" + text + "'");
  }
  if (month < 1 || month > 12) {
    return Status::InvalidArgument("month out of range in '" + text + "'");
  }
  if (day < 1 || day > DaysInMonth(year, month)) {
    return Status::InvalidArgument("day out of range in '" + text + "'");
  }
  return Date{year, month, day};
}

std::string FormatDate(const Date& date) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", date.year, date.month,
                date.day);
  return buf;
}

DayNumber TpchStartDay() { return DateToDayNumber(Date{1992, 1, 1}); }
DayNumber TpchEndDay() { return DateToDayNumber(Date{1998, 12, 31}); }

}  // namespace nipo
