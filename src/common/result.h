#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

/// \file result.h
/// Result<T>: value-or-Status, the return type of fallible producers.

namespace nipo {

/// \brief Holds either a successfully produced T or an error Status.
///
/// Usage:
/// \code
///   Result<Table> r = LoadTable(path);
///   if (!r.ok()) return r.status();
///   Table t = std::move(r).ValueOrDie();
/// \endcode
template <typename T>
class Result {
 public:
  /// Constructs a success result (implicit so `return value;` works).
  Result(T value) : state_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs an error result from a non-OK status. Constructing from an
  /// OK status is a programming error and degrades to kInternal.
  Result(Status status) : state_(std::move(status)) {  // NOLINT
    if (std::get<Status>(state_).ok()) {
      state_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(state_); }

  /// The error status; OK if this result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(state_);
  }

  /// Value accessors. Precondition: ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(state_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(state_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::get<T>(std::move(state_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value if ok, otherwise `fallback`.
  T ValueOr(T fallback) const {
    if (ok()) return std::get<T>(state_);
    return fallback;
  }

 private:
  std::variant<Status, T> state_;
};

}  // namespace nipo

/// Assigns the value of a Result expression to `lhs`, propagating errors.
#define NIPO_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).ValueOrDie()

#define NIPO_ASSIGN_OR_RETURN(lhs, rexpr) \
  NIPO_ASSIGN_OR_RETURN_IMPL(             \
      NIPO_CONCAT_(_nipo_result_, __LINE__), lhs, rexpr)

#define NIPO_CONCAT_INNER_(a, b) a##b
#define NIPO_CONCAT_(a, b) NIPO_CONCAT_INNER_(a, b)
