#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

/// \file table_printer.h
/// Aligned text tables and CSV emission for the figure-reproduction
/// benchmarks. Every bench binary prints the series of its paper figure as
/// one of these tables so the output is directly comparable to the plot.

namespace nipo {

/// \brief Collects rows of string cells and renders them either as an
/// aligned, human-readable table or as CSV.
class TablePrinter {
 public:
  /// \param title Caption printed above the table (e.g. "Figure 12: ...").
  explicit TablePrinter(std::string title);

  /// Sets the column headers. Must be called before adding rows.
  void SetHeader(std::vector<std::string> header);

  /// Appends a row; the cell count must match the header.
  void AddRow(std::vector<std::string> cells);

  /// Convenience for numeric rows: formats doubles with `precision` digits.
  void AddNumericRow(const std::vector<double>& values, int precision = 3);

  /// Renders the aligned table to `out`.
  void Print(std::ostream& out) const;

  /// Renders as CSV (header + rows) to `out`.
  void PrintCsv(std::ostream& out) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief Formats a double with `precision` significant decimals, trimming
/// trailing zeros ("3.140" -> "3.14", "2.000" -> "2").
std::string FormatDouble(double value, int precision = 3);

}  // namespace nipo
