#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"

/// \file date.h
/// Calendar date <-> day-number conversion.
///
/// The paper (Section 2.1) converts the TPC-H shipdate column from a date
/// string to an integer timestamp so the predicate becomes a cheap integer
/// comparison; this module provides that conversion. Dates are represented
/// as days since the civil epoch 1970-01-01 (negative for earlier dates),
/// using Howard Hinnant's proleptic-Gregorian algorithms.

namespace nipo {

/// Days since 1970-01-01 (may be negative).
using DayNumber = int32_t;

/// \brief A Gregorian calendar date.
struct Date {
  int32_t year = 1970;
  int32_t month = 1;  ///< 1..12
  int32_t day = 1;    ///< 1..31

  bool operator==(const Date&) const = default;
};

/// \brief Converts a calendar date to days since 1970-01-01.
/// Valid for the whole proleptic Gregorian calendar range used here.
DayNumber DateToDayNumber(const Date& date);

/// \brief Converts days since 1970-01-01 back to a calendar date.
Date DayNumberToDate(DayNumber days);

/// \brief Parses "YYYY-MM-DD". Returns InvalidArgument on malformed input
/// or out-of-range month/day.
Result<Date> ParseDate(const std::string& text);

/// \brief Formats as "YYYY-MM-DD".
std::string FormatDate(const Date& date);

/// \brief True iff `year` is a Gregorian leap year.
bool IsLeapYear(int32_t year);

/// \brief Number of days in the given month of the given year.
int32_t DaysInMonth(int32_t year, int32_t month);

/// TPC-H date domain: orders/lineitem dates fall in [1992-01-01,
/// 1998-12-31] (shipdate extends ~4 months beyond orderdate's end but we
/// clamp generation inside the canonical window).
DayNumber TpchStartDay();
DayNumber TpchEndDay();

}  // namespace nipo
