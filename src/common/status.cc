#include "common/status.h"

/// \file status.cc
/// StatusCode spelling table and Status message assembly.

namespace nipo {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kTypeMismatch:
      return "Type mismatch";
    case StatusCode::kCapacityExceeded:
      return "Capacity exceeded";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg) : code_(code) {
  if (code_ != StatusCode::kOk) {
    msg_ = std::move(msg);
  }
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace nipo
