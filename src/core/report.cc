#include "core/report.h"

#include <ostream>

#include "common/table_printer.h"

/// \file report.cc
/// Rendering of execution reports: PMU counter rows, baseline vs
/// progressive comparison tables, the PEO-change trace, and the sharded
/// (parallel) merged/per-worker summaries, in both aligned-text and CSV
/// form.

namespace nipo {

namespace {

std::vector<std::pair<std::string, uint64_t>> CounterRows(
    const PmuCounters& c) {
  return {
      {"instructions", c.instructions},
      {"branches", c.branches},
      {"branches_taken", c.branches_taken},
      {"branches_not_taken", c.branches_not_taken},
      {"mispredictions", c.mispredictions},
      {"taken_mispredictions", c.taken_mispredictions},
      {"not_taken_mispredictions", c.not_taken_mispredictions},
      {"l1_accesses", c.l1_accesses},
      {"l1_misses", c.l1_misses},
      {"l2_accesses", c.l2_accesses},
      {"l2_misses", c.l2_misses},
      {"l3_accesses", c.l3_accesses},
      {"l3_misses", c.l3_misses},
      {"prefetch_requests", c.prefetch_requests},
      {"l3_evictions_caused", c.l3_evictions_caused},
      {"l3_evictions_suffered", c.l3_evictions_suffered},
      {"cycles", c.cycles},
  };
}

}  // namespace

void PrintCounters(const PmuCounters& counters, const std::string& title,
                   std::ostream& out) {
  TablePrinter table(title);
  table.SetHeader({"counter", "value"});
  for (const auto& [name, value] : CounterRows(counters)) {
    table.AddRow({name, std::to_string(value)});
  }
  table.Print(out);
}

void PrintDriveResult(const DriveResult& drive, const std::string& title,
                      std::ostream& out) {
  TablePrinter table(title);
  table.SetHeader({"metric", "value"});
  table.AddRow({"input tuples", std::to_string(drive.input_tuples)});
  table.AddRow({"qualifying tuples",
                std::to_string(drive.qualifying_tuples)});
  table.AddRow({"aggregate", FormatDouble(drive.aggregate, 2)});
  table.AddRow({"vectors", std::to_string(drive.num_vectors)});
  table.AddRow({"simulated msec", FormatDouble(drive.simulated_msec, 3)});
  table.AddRow({"cycles", std::to_string(drive.total.cycles)});
  table.AddRow({"branch mispredictions",
                std::to_string(drive.total.mispredictions)});
  table.AddRow({"L3 accesses", std::to_string(drive.total.l3_accesses)});
  table.Print(out);
}

void PrintExecReport(const ExecReport& report, const std::string& title,
                     std::ostream& out) {
  TablePrinter table(title);
  table.SetHeader({"metric", "value"});
  table.AddRow({"mode", report.mode == ExecMode::kBaseline ? "baseline"
                                                           : "progressive"});
  table.AddRow(
      {"driver", report.driver == ExecDriver::kSolo ? "solo" : "sharded"});
  table.AddRow({"input tuples", std::to_string(report.input_tuples)});
  table.AddRow(
      {"qualifying tuples", std::to_string(report.qualifying_tuples)});
  table.AddRow(
      {"zone-skipped tuples", std::to_string(report.zone_skipped_tuples)});
  table.AddRow({"aggregate", FormatDouble(report.aggregate, 2)});
  table.AddRow({"simulated msec", FormatDouble(report.simulated_msec, 3)});
  table.AddRow({"final order", FormatOrder(report.final_order)});
  table.Print(out);
  if (report.progressive.has_value()) {
    PrintProgressiveReport(*report.progressive, title + " (progressive)",
                           out);
  } else if (report.sharded_baseline.has_value()) {
    PrintParallelDriveResult(report.sharded_baseline->drive,
                             title + " (workers)", out);
  } else if (report.sharded_progressive.has_value()) {
    PrintParallelProgressiveReport(*report.sharded_progressive,
                                   title + " (workers)", out);
  }
}

std::string FormatOrder(const std::vector<size_t>& order) {
  std::string out;
  for (size_t i = 0; i < order.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(order[i]);
  }
  return out;
}

void PrintProgressiveReport(const ProgressiveReport& report,
                            const std::string& title, std::ostream& out) {
  PrintDriveResult(report.drive, title, out);
  TablePrinter trace(title + " - PEO trace");
  trace.SetHeader({"vector", "old order", "new order", "flags"});
  for (const PeoChange& change : report.changes) {
    std::string flags;
    if (change.exploration) flags += "exploration ";
    if (change.reverted) flags += "reverted";
    trace.AddRow({std::to_string(change.vector_index),
                  FormatOrder(change.old_order),
                  FormatOrder(change.new_order), flags});
  }
  trace.Print(out);
  out << "optimizations: " << report.num_optimizations
      << ", final order: " << FormatOrder(report.final_order) << "\n";
  if (!report.last_estimate.empty()) {
    out << "final selectivity estimate:";
    for (double s : report.last_estimate) {
      out << " " << FormatDouble(s, 3);
    }
    out << "\n";
  }
}

void PrintParallelDriveResult(const ParallelDriveResult& result,
                              const std::string& title, std::ostream& out) {
  PrintDriveResult(result.merged, title + " (merged)", out);
  TablePrinter workers(title + " - workers");
  workers.SetHeader({"worker", "morsels", "steals", "cycles",
                     "machine msec"});
  for (size_t w = 0; w < result.workers.size(); ++w) {
    const WorkerStats& stats = result.workers[w];
    workers.AddRow({std::to_string(w), std::to_string(stats.morsels),
                    std::to_string(stats.steals),
                    std::to_string(stats.counters.cycles),
                    FormatDouble(stats.simulated_msec, 3)});
  }
  workers.Print(out);
  out << "morsels: " << result.num_morsels
      << ", critical path: " << FormatDouble(result.merged.simulated_msec, 3)
      << " simulated msec, wall: " << FormatDouble(result.wall_msec, 3)
      << " host msec\n";
}

void PrintParallelProgressiveReport(const ParallelProgressiveReport& report,
                                    const std::string& title,
                                    std::ostream& out) {
  PrintParallelDriveResult(report.drive, title, out);
  TablePrinter trace(title + " - broadcast PEO trace");
  trace.SetHeader({"window end", "old order", "new order", "flags"});
  for (const PeoChange& change : report.changes) {
    std::string flags;
    if (change.exploration) flags += "exploration ";
    if (change.reverted) flags += "reverted";
    trace.AddRow({std::to_string(change.vector_index),
                  FormatOrder(change.old_order),
                  FormatOrder(change.new_order), flags});
  }
  trace.Print(out);
  out << "optimizations: " << report.num_optimizations
      << ", stale morsels: " << report.stale_morsels
      << ", final order: " << FormatOrder(report.final_order) << "\n";
  if (!report.last_estimate.empty()) {
    out << "final selectivity estimate:";
    for (double s : report.last_estimate) {
      out << " " << FormatDouble(s, 3);
    }
    out << "\n";
  }
}

void PrintWorkloadReport(const WorkloadReport& report,
                         const std::string& title, std::ostream& out) {
  const bool open = report.arrival_kind != ArrivalKind::kClosed;
  // Fault-mode columns only appear when some query needed them.
  const bool faulty =
      report.queries_ok != report.queries.size() || report.total_retries > 0;
  TablePrinter queries(title + " - queries");
  std::vector<std::string> header = {"query",     "mode",       "qualifying",
                                     "machine msec", "sim start", "sim finish",
                                     "quanta",    "PEO changes"};
  if (faulty) {
    header.insert(header.end(), {"outcome", "attempts", "backoff"});
  }
  if (open) {
    header.insert(header.end(), {"arrival", "queue wait", "latency"});
  }
  if (report.contention) {
    header.insert(header.end(),
                  {"L3 evict suffered", "L3 evict caused", "L3 occ peak"});
  }
  queries.SetHeader(header);
  for (const WorkloadQueryReport& q : report.queries) {
    std::vector<std::string> row = {
        q.name, q.progressive ? "progressive" : "baseline",
        std::to_string(q.drive.qualifying_tuples),
        FormatDouble(q.drive.simulated_msec, 3),
        FormatDouble(q.sim_start_msec, 3), FormatDouble(q.sim_finish_msec, 3),
        std::to_string(q.quanta),
        q.progressive ? std::to_string(q.changes.size()) : "-"};
    if (faulty) {
      row.push_back(std::string(QueryOutcomeToString(q.outcome)));
      row.push_back(std::to_string(q.attempts));
      row.push_back(FormatDouble(q.sim_backoff_msec, 3));
    }
    if (open) {
      row.push_back(FormatDouble(q.sim_arrival_msec, 3));
      row.push_back(FormatDouble(q.sim_queue_wait_msec, 3));
      row.push_back(FormatDouble(q.sim_latency_msec, 3));
    }
    if (report.contention) {
      row.push_back(std::to_string(q.drive.total.l3_evictions_suffered));
      row.push_back(std::to_string(q.drive.total.l3_evictions_caused));
      row.push_back(std::to_string(q.shared_l3_peak_occupancy_lines));
    }
    queries.AddRow(row);
  }
  queries.Print(out);
  const double speedup = report.sim_makespan_msec > 0
                             ? report.sim_serial_msec / report.sim_makespan_msec
                             : 0.0;
  out << "queries: " << report.queries.size()
      << ", workers: " << report.num_threads
      << ", max concurrent: " << report.max_concurrent
      << " (peak in flight: " << report.peak_in_flight << ")\n"
      << "policy: " << SchedulePolicyToString(report.policy)
      << ", contention: " << (report.contention ? "on" : "off");
  if (report.contention) {
    out << " (shared L3: " << report.shared_l3_capacity_lines
        << " lines, displaced: " << report.shared_l3_lines_displaced << ")";
  }
  out << "\n";
  if (open) {
    out << "arrivals: " << ArrivalKindToString(report.arrival_kind) << " at "
        << FormatDouble(report.arrival_rate_qps, 1) << " queries/sec\n";
  }
  if (report.adaptive_admission) {
    out << "adaptive admission: limit " << report.admission_final_limit
        << " (min seen: " << report.admission_min_limit
        << ", +" << report.admission_increases << "/-"
        << report.admission_decreases << " steps)\n";
  }
  if (faulty) {
    out << "outcomes: " << report.queries_ok << " ok, "
        << report.queries_failed << " failed, "
        << report.queries_deadline_exceeded << " deadline, "
        << report.queries_cancelled << " cancelled, " << report.queries_shed
        << " shed; retries: " << report.total_retries << " (backoff "
        << FormatDouble(report.total_backoff_msec, 3) << " msec)\n"
        << "goodput: " << FormatDouble(report.sim_goodput_qps, 1)
        << " ok-queries/sec\n";
  }
  out << "simulated makespan: " << FormatDouble(report.sim_makespan_msec, 3)
      << " msec (serial: " << FormatDouble(report.sim_serial_msec, 3)
      << " msec, speedup " << FormatDouble(speedup, 2) << "x), "
      << FormatDouble(report.sim_queries_per_sec, 1) << " queries/sec\n"
      << "latency msec (simulated): p50 "
      << FormatDouble(report.latency.p50_msec, 3) << ", p95 "
      << FormatDouble(report.latency.p95_msec, 3) << ", p99 "
      << FormatDouble(report.latency.p99_msec, 3) << ", max "
      << FormatDouble(report.latency.max_msec, 3) << "\n"
      << "queue wait msec (simulated): p50 "
      << FormatDouble(report.queue_wait.p50_msec, 3) << ", p95 "
      << FormatDouble(report.queue_wait.p95_msec, 3) << ", p99 "
      << FormatDouble(report.queue_wait.p99_msec, 3) << ", max "
      << FormatDouble(report.queue_wait.max_msec, 3) << "\n"
      << "host wall: " << FormatDouble(report.wall_msec, 3) << " msec, "
      << FormatDouble(report.wall_queries_per_sec, 1)
      << " queries/sec (not simulated)\n";
}

void WriteCountersCsv(const PmuCounters& counters, std::ostream& out) {
  out << "counter,value\n";
  for (const auto& [name, value] : CounterRows(counters)) {
    out << name << "," << value << "\n";
  }
}

}  // namespace nipo
