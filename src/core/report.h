#pragma once

#include <iosfwd>
#include <string>

#include "core/engine.h"

/// \file report.h
/// Human-readable and CSV rendering of execution reports: counter
/// summaries, PEO traces and baseline/progressive comparisons. Keeps the
/// examples and downstream tools free of formatting boilerplate.

namespace nipo {

/// \brief Renders a counter set as an aligned two-column table.
void PrintCounters(const PmuCounters& counters, const std::string& title,
                   std::ostream& out);

/// \brief Renders the drive summary (rows, result, simulated time,
/// headline counters).
void PrintDriveResult(const DriveResult& drive, const std::string& title,
                      std::ostream& out);

/// \brief Renders a progressive run: drive summary plus the PEO trace
/// (one line per order change, with revert/exploration flags).
void PrintProgressiveReport(const ProgressiveReport& report,
                            const std::string& title, std::ostream& out);

/// \brief Renders a sharded execution: the deterministic merged summary
/// plus one row per worker (morsels, steals, cycles, machine time).
void PrintParallelDriveResult(const ParallelDriveResult& result,
                              const std::string& title, std::ostream& out);

/// \brief Renders a sharded progressive run: merged drive summary,
/// per-worker table, and the broadcast PEO trace.
void PrintParallelProgressiveReport(const ParallelProgressiveReport& report,
                                    const std::string& title,
                                    std::ostream& out);

/// \brief Renders a workload execution: one row per query (mode, result,
/// machine time, simulated queue/finish times, PEO changes; arrival /
/// queue-wait / latency columns in open-loop runs) plus the aggregate
/// schedule lines (makespan, throughput, latency and queue-wait tails,
/// adaptive-admission trajectory, pool utilization).
void PrintWorkloadReport(const WorkloadReport& report,
                         const std::string& title, std::ostream& out);

/// \brief Renders a unified Execute run: the mode/driver line, headline
/// numbers (tuples, zone-skipped, aggregate, simulated time) and the
/// engaged mode-specific sub-report.
void PrintExecReport(const ExecReport& report, const std::string& title,
                     std::ostream& out);

/// \brief One-line PEO rendering ("3,1,0,2,4").
std::string FormatOrder(const std::vector<size_t>& order);

/// \brief CSV with one row per counter (name,value); machine-readable
/// companion to PrintCounters.
void WriteCountersCsv(const PmuCounters& counters, std::ostream& out);

}  // namespace nipo
