#include "core/engine.h"

#include <algorithm>
#include <numeric>

/// \file engine.cc
/// Engine facade implementation: the table registry, compilation of a
/// QuerySpec into a PipelineExecutor bound to a fresh simulated machine,
/// the baseline and progressive execution entry points (single-threaded
/// and sharded-parallel, see DESIGN.md "Parallel execution"), and the
/// AllOrders permutation enumeration used by the figure benches.

namespace nipo {

Engine::Engine(HwConfig hw) : hw_(hw) {}

Status Engine::RegisterTable(std::unique_ptr<Table> table) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  const std::string name = table->name();
  if (tables_.count(name) != 0) {
    return Status::AlreadyExists("table '" + name + "' already registered");
  }
  tables_[name] = std::move(table);
  return Status::OK();
}

Result<const Table*> Engine::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return static_cast<const Table*>(it->second.get());
}

Result<Table*> Engine::GetMutableTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second.get();
}

Result<std::unique_ptr<PipelineExecutor>> Engine::CompileQuery(
    const QuerySpec& query, Pmu* pmu, InstrumentationMode mode) const {
  NIPO_ASSIGN_OR_RETURN(const Table* table, GetTable(query.table));
  return PipelineExecutor::Compile(*table, query.ops, query.payload_columns,
                                   pmu, mode);
}

namespace {

Status ApplyOrder(PipelineExecutor* exec,
                  const std::optional<std::vector<size_t>>& order) {
  if (!order.has_value()) return Status::OK();
  return exec->Reorder(*order);
}

}  // namespace

Result<BaselineReport> Engine::ExecuteBaseline(
    const QuerySpec& query, size_t vector_size,
    std::optional<std::vector<size_t>> order) const {
  if (vector_size == 0) {
    return Status::InvalidArgument("vector_size must be positive");
  }
  Pmu pmu = NewMachine();
  NIPO_ASSIGN_OR_RETURN(
      std::unique_ptr<PipelineExecutor> exec,
      CompileQuery(query, &pmu, InstrumentationMode::kPmu));
  NIPO_RETURN_NOT_OK(ApplyOrder(exec.get(), order));
  BaselineReport report;
  report.order = exec->current_order();
  report.drive = RunBaseline(exec.get(), vector_size);
  return report;
}

Result<ProgressiveReport> Engine::ExecuteProgressive(
    const QuerySpec& query, const ProgressiveConfig& config,
    std::optional<std::vector<size_t>> initial_order) const {
  if (config.vector_size == 0) {
    return Status::InvalidArgument("vector_size must be positive");
  }
  Pmu pmu = NewMachine();
  NIPO_ASSIGN_OR_RETURN(
      std::unique_ptr<PipelineExecutor> exec,
      CompileQuery(query, &pmu, InstrumentationMode::kPmu));
  NIPO_RETURN_NOT_OK(ApplyOrder(exec.get(), initial_order));
  ProgressiveOptimizer optimizer(exec.get(), config);
  return optimizer.Run();
}

Result<ParallelBaselineReport> Engine::ExecuteBaselineParallel(
    const QuerySpec& query, const ParallelOptions& options,
    std::optional<std::vector<size_t>> order) const {
  if (options.num_threads == 0) {
    return Status::InvalidArgument("num_threads must be positive");
  }
  if (options.morsel_size == 0) {
    return Status::InvalidArgument("morsel_size must be positive");
  }
  ParallelConfig pcfg;
  pcfg.num_threads = options.num_threads;
  pcfg.morsel_size = options.morsel_size;
  ParallelDriver driver(
      NewMachine(),
      [this, &query](Pmu* pmu) {
        return CompileQuery(query, pmu, InstrumentationMode::kPmu);
      },
      pcfg);
  // Query and order errors propagate from the driver, which compiles every
  // worker executor and applies `order` before any thread starts.
  ParallelBaselineReport report;
  NIPO_ASSIGN_OR_RETURN(report.drive, driver.Run(order));
  if (order.has_value()) {
    report.order = *std::move(order);
  } else {
    report.order.resize(query.ops.size());
    std::iota(report.order.begin(), report.order.end(), size_t{0});
  }
  return report;
}

Result<ParallelProgressiveReport> Engine::ExecuteProgressiveParallel(
    const QuerySpec& query, const ProgressiveConfig& config,
    const ParallelOptions& options,
    std::optional<std::vector<size_t>> initial_order) const {
  if (options.num_threads == 0) {
    return Status::InvalidArgument("num_threads must be positive");
  }
  if (config.vector_size == 0) {
    return Status::InvalidArgument("vector_size must be positive");
  }
  // The coordinator's control pipeline: never executed, provides operator
  // metadata and carries the authoritative current order.
  Pmu control_pmu = NewMachine();
  NIPO_ASSIGN_OR_RETURN(
      std::unique_ptr<PipelineExecutor> control,
      CompileQuery(query, &control_pmu, InstrumentationMode::kPmu));
  NIPO_RETURN_NOT_OK(ApplyOrder(control.get(), initial_order));
  ParallelProgressiveCoordinator coordinator(control.get(), config);

  ParallelConfig pcfg;
  pcfg.num_threads = options.num_threads;
  pcfg.morsel_size = config.vector_size;  // the paper's sampling unit
  ParallelDriver driver(
      NewMachine(),
      [this, &query](Pmu* pmu) {
        return CompileQuery(query, pmu, InstrumentationMode::kPmu);
      },
      pcfg);
  ParallelProgressiveReport report;
  NIPO_ASSIGN_OR_RETURN(
      report.drive,
      driver.Run(initial_order, [&coordinator](const MorselRecord& record) {
        return coordinator.OnMorsel(record);
      }));
  coordinator.FillReport(&report);
  return report;
}

Result<WorkloadReport> Engine::ExecuteWorkload(const WorkloadSpec& spec) const {
  std::vector<WorkloadTask> tasks;
  tasks.reserve(spec.queries.size());
  for (const WorkloadQuery& q : spec.queries) {
    WorkloadTask task;
    task.name = q.name;
    task.progressive = q.progressive;
    task.config = q.config;
    task.initial_order = q.initial_order;
    tasks.push_back(std::move(task));
  }
  WorkloadDriver driver(
      NewMachine(),
      [this, &spec](size_t index, Pmu* pmu) {
        return CompileQuery(spec.queries[index].query, pmu,
                            InstrumentationMode::kPmu);
      },
      spec.options);
  return driver.Run(tasks);
}

std::vector<std::vector<size_t>> AllOrders(size_t n) {
  NIPO_CHECK(n <= 8);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::vector<std::vector<size_t>> all;
  do {
    all.push_back(order);
  } while (std::next_permutation(order.begin(), order.end()));
  return all;
}

}  // namespace nipo
