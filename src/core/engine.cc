#include "core/engine.h"

#include <algorithm>
#include <numeric>

#include "cost/cache_model.h"

/// \file engine.cc
/// Engine facade implementation: the table registry, compilation of a
/// QuerySpec into a PipelineExecutor bound to a fresh simulated machine,
/// the baseline and progressive execution entry points (single-threaded
/// and sharded-parallel, see DESIGN.md "Parallel execution"), and the
/// AllOrders permutation enumeration used by the figure benches.

namespace nipo {

Engine::Engine(HwConfig hw) : hw_(hw) {}

Status Engine::RegisterTable(std::unique_ptr<Table> table) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  const std::string name = table->name();
  if (tables_.count(name) != 0) {
    return Status::AlreadyExists("table '" + name + "' already registered");
  }
  tables_[name] = std::move(table);
  return Status::OK();
}

Result<const Table*> Engine::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return static_cast<const Table*>(it->second.get());
}

Result<Table*> Engine::GetMutableTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second.get();
}

Result<std::unique_ptr<PipelineExecutor>> Engine::CompileQuery(
    const QuerySpec& query, Pmu* pmu, InstrumentationMode mode) const {
  NIPO_ASSIGN_OR_RETURN(const Table* table, GetTable(query.table));
  return PipelineExecutor::Compile(*table, query.ops, query.payload_columns,
                                   pmu, mode);
}

namespace {

Status ApplyOrder(PipelineExecutor* exec,
                  const std::optional<std::vector<size_t>>& order) {
  if (!order.has_value()) return Status::OK();
  return exec->Reorder(*order);
}

/// Copies the mode-independent headline numbers of a solo drive into the
/// unified report.
void FillHeadline(const DriveResult& drive, ExecReport* report) {
  report->input_tuples = drive.input_tuples;
  report->qualifying_tuples = drive.qualifying_tuples;
  report->zone_skipped_tuples = drive.zone_skipped_tuples;
  report->aggregate = drive.aggregate;
  report->counters = drive.total;
  report->simulated_msec = drive.simulated_msec;
}

}  // namespace

Result<ExecReport> Engine::Execute(const QuerySpec& query,
                                   const ExecOptions& options) const {
  const ExecDriver driver =
      options.driver != ExecDriver::kAuto ? options.driver
      : options.num_threads <= 1          ? ExecDriver::kSolo
                                          : ExecDriver::kSharded;
  ExecReport report;
  report.mode = options.mode;
  report.driver = driver;

  if (driver == ExecDriver::kSolo) {
    if (options.mode == ExecMode::kBaseline) {
      if (options.vector_size == 0) {
        return Status::InvalidArgument("vector_size must be positive");
      }
      Pmu pmu = NewMachine();
      NIPO_ASSIGN_OR_RETURN(
          std::unique_ptr<PipelineExecutor> exec,
          CompileQuery(query, &pmu, InstrumentationMode::kPmu));
      NIPO_RETURN_NOT_OK(ApplyOrder(exec.get(), options.order));
      BaselineReport sub;
      sub.order = exec->current_order();
      sub.drive = RunBaseline(exec.get(), options.vector_size);
      // Runtime data errors (e.g. an FK value outside its dimension) latch
      // on the executor instead of aborting; the solo entry points surface
      // them as a failed call.
      NIPO_RETURN_NOT_OK(exec->error());
      FillHeadline(sub.drive, &report);
      report.final_order = sub.order;
      report.baseline = std::move(sub);
      return report;
    }
    if (options.progressive.vector_size == 0) {
      return Status::InvalidArgument("vector_size must be positive");
    }
    Pmu pmu = NewMachine();
    NIPO_ASSIGN_OR_RETURN(
        std::unique_ptr<PipelineExecutor> exec,
        CompileQuery(query, &pmu, InstrumentationMode::kPmu));
    NIPO_RETURN_NOT_OK(ApplyOrder(exec.get(), options.order));
    ProgressiveOptimizer optimizer(exec.get(), options.progressive);
    ProgressiveReport sub = optimizer.Run();
    NIPO_RETURN_NOT_OK(exec->error());
    FillHeadline(sub.drive, &report);
    report.final_order = sub.final_order;
    report.progressive = std::move(sub);
    return report;
  }

  if (options.num_threads == 0) {
    return Status::InvalidArgument("num_threads must be positive");
  }
  ParallelConfig pcfg;
  pcfg.num_threads = options.num_threads;
  pcfg.cancel = options.cancel;
  auto factory = [this, &query](Pmu* pmu) {
    return CompileQuery(query, pmu, InstrumentationMode::kPmu);
  };

  if (options.mode == ExecMode::kBaseline) {
    if (options.vector_size == 0) {
      return Status::InvalidArgument("morsel_size must be positive");
    }
    pcfg.morsel_size = options.vector_size;
    ParallelDriver pdriver(NewMachine(), factory, pcfg);
    // Query and order errors propagate from the driver, which compiles
    // every worker executor and applies the order before any thread
    // starts.
    ParallelBaselineReport sub;
    NIPO_ASSIGN_OR_RETURN(sub.drive, pdriver.Run(options.order));
    // A runtime data error fails the call, like the solo entry point;
    // cooperative cancellation instead returns the partial report with
    // drive.cancelled set.
    NIPO_RETURN_NOT_OK(sub.drive.error);
    if (options.order.has_value()) {
      sub.order = *options.order;
    } else {
      sub.order.resize(query.ops.size());
      std::iota(sub.order.begin(), sub.order.end(), size_t{0});
    }
    FillHeadline(sub.drive.merged, &report);
    report.final_order = sub.order;
    report.sharded_baseline = std::move(sub);
    return report;
  }

  if (options.progressive.vector_size == 0) {
    return Status::InvalidArgument("vector_size must be positive");
  }
  // The coordinator's control pipeline: never executed, provides operator
  // metadata and carries the authoritative current order.
  Pmu control_pmu = NewMachine();
  NIPO_ASSIGN_OR_RETURN(
      std::unique_ptr<PipelineExecutor> control,
      CompileQuery(query, &control_pmu, InstrumentationMode::kPmu));
  NIPO_RETURN_NOT_OK(ApplyOrder(control.get(), options.order));
  ParallelProgressiveCoordinator coordinator(control.get(),
                                             options.progressive);
  pcfg.morsel_size = options.progressive.vector_size;  // the sampling unit
  ParallelDriver pdriver(NewMachine(), factory, pcfg);
  ParallelProgressiveReport sub;
  NIPO_ASSIGN_OR_RETURN(
      sub.drive, pdriver.Run(options.order,
                             [&coordinator](const MorselRecord& record) {
                               return coordinator.OnMorsel(record);
                             }));
  NIPO_RETURN_NOT_OK(sub.drive.error);
  coordinator.FillReport(&sub);
  FillHeadline(sub.drive.merged, &report);
  report.final_order = sub.final_order;
  report.sharded_progressive = std::move(sub);
  return report;
}

Result<TableEncodingStats> Engine::EncodeTable(const std::string& name,
                                               const EncodingOptions& options) {
  NIPO_ASSIGN_OR_RETURN(Table * table, GetMutableTable(name));
  return EncodeTableColumns(table, options);
}

Result<BaselineReport> Engine::ExecuteBaseline(
    const QuerySpec& query, size_t vector_size,
    std::optional<std::vector<size_t>> order) const {
  ExecOptions options;
  options.mode = ExecMode::kBaseline;
  options.driver = ExecDriver::kSolo;
  options.vector_size = vector_size;
  options.order = std::move(order);
  NIPO_ASSIGN_OR_RETURN(ExecReport report, Execute(query, options));
  if (!report.baseline.has_value()) {
    return Status::InvalidArgument("execution produced no baseline report");
  }
  return *std::move(report.baseline);
}

Result<ProgressiveReport> Engine::ExecuteProgressive(
    const QuerySpec& query, const ProgressiveConfig& config,
    std::optional<std::vector<size_t>> initial_order) const {
  ExecOptions options;
  options.mode = ExecMode::kProgressive;
  options.driver = ExecDriver::kSolo;
  options.progressive = config;
  options.order = std::move(initial_order);
  NIPO_ASSIGN_OR_RETURN(ExecReport report, Execute(query, options));
  if (!report.progressive.has_value()) {
    return Status::InvalidArgument("execution produced no progressive report");
  }
  return *std::move(report.progressive);
}

Result<ParallelBaselineReport> Engine::ExecuteBaselineParallel(
    const QuerySpec& query, const ParallelOptions& parallel,
    std::optional<std::vector<size_t>> order) const {
  ExecOptions options;
  options.mode = ExecMode::kBaseline;
  options.driver = ExecDriver::kSharded;
  options.num_threads = parallel.num_threads;
  options.vector_size = parallel.morsel_size;
  options.cancel = parallel.cancel;
  options.order = std::move(order);
  NIPO_ASSIGN_OR_RETURN(ExecReport report, Execute(query, options));
  if (!report.sharded_baseline.has_value()) {
    return Status::InvalidArgument("execution produced no sharded_baseline report");
  }
  return *std::move(report.sharded_baseline);
}

Result<ParallelProgressiveReport> Engine::ExecuteProgressiveParallel(
    const QuerySpec& query, const ProgressiveConfig& config,
    const ParallelOptions& parallel,
    std::optional<std::vector<size_t>> initial_order) const {
  ExecOptions options;
  options.mode = ExecMode::kProgressive;
  options.driver = ExecDriver::kSharded;
  options.num_threads = parallel.num_threads;
  options.progressive = config;
  options.cancel = parallel.cancel;
  options.order = std::move(initial_order);
  NIPO_ASSIGN_OR_RETURN(ExecReport report, Execute(query, options));
  if (!report.sharded_progressive.has_value()) {
    return Status::InvalidArgument("execution produced no sharded_progressive report");
  }
  return *std::move(report.sharded_progressive);
}

namespace {

/// Fills a task's scheduling estimates from the cache cost model: every
/// touched column contributes its line-rounded bytes, split into
/// streamed (fact columns, scanned once) and reused (dimension tables,
/// re-referenced per probe), combined into the L3 capacity claim by
/// EstimateScanFootprint. The work score is the touched-value count — a
/// relative ordering for SRWF, not a cycle prediction.
void FillScheduleEstimates(const Table& table, const QuerySpec& query,
                           const HwConfig& hw, WorkloadTask* task) {
  ScanCacheModelConfig model;
  model.line_size = hw.l3.line_size;
  // A column referenced by several operators (e.g. a re-probed dimension)
  // occupies its bytes once, so count each (table, column) pair once.
  std::vector<std::pair<const Table*, std::string>> counted;
  auto column_bytes = [&](const Table& t, const std::string& name) {
    auto column = t.GetColumn(name);
    if (!column.ok()) return uint64_t{0};  // surfaces in validation later
    const std::pair<const Table*, std::string> key{&t, name};
    if (std::find(counted.begin(), counted.end(), key) != counted.end()) {
      return uint64_t{0};
    }
    counted.push_back(key);
    const ColumnCacheEstimate est = EstimateColumnCache(
        model, static_cast<double>(t.num_rows()),
        ScanColumnSpec{
            static_cast<uint32_t>(column.ValueOrDie()->value_width()), 1.0});
    return static_cast<uint64_t>(est.lines_total) * model.line_size;
  };
  const double rows = static_cast<double>(table.num_rows());
  uint64_t streamed = 0;
  uint64_t reuse = 0;
  double work = 0;
  for (const OperatorSpec& op : query.ops) {
    if (op.kind == OperatorSpec::Kind::kPredicate) {
      streamed += column_bytes(table, op.predicate.column);
      work += rows;
    } else {
      streamed += column_bytes(table, op.probe.fk_column);
      if (op.probe.dimension != nullptr) {
        reuse += column_bytes(*op.probe.dimension, op.probe.filter_column);
      }
      work += 2 * rows;  // FK read + dimension gather
    }
  }
  for (const std::string& payload : query.payload_columns) {
    streamed += column_bytes(table, payload);
    work += rows;
  }
  task->estimated_work = work;
  task->footprint_bytes =
      EstimateScanFootprint(streamed, reuse, hw.l3.capacity_bytes)
          .footprint_bytes;
}

}  // namespace

Result<WorkloadReport> Engine::Execute(const WorkloadSpec& spec) const {
  std::vector<WorkloadTask> tasks;
  tasks.reserve(spec.queries.size());
  for (const WorkloadQuery& q : spec.queries) {
    WorkloadTask task;
    task.name = q.name;
    task.progressive = q.progressive;
    task.config = q.config;
    task.initial_order = q.initial_order;
    task.priority = q.priority;
    task.sim_deadline_msec = q.sim_deadline_msec;
    task.sim_cancel_msec = q.sim_cancel_msec;
    auto table = GetTable(q.query.table);
    if (table.ok()) {
      FillScheduleEstimates(*table.ValueOrDie(), q.query, hw_, &task);
    }
    tasks.push_back(std::move(task));
  }
  WorkloadDriver driver(
      NewMachine(),
      [this, &spec](size_t index, Pmu* pmu) {
        return CompileQuery(spec.queries[index].query, pmu,
                            InstrumentationMode::kPmu);
      },
      spec.options);
  return driver.Run(tasks);
}

Result<WorkloadReport> Engine::ExecuteWorkload(const WorkloadSpec& spec) const {
  return Execute(spec);
}

std::vector<std::vector<size_t>> AllOrders(size_t n) {
  NIPO_CHECK(n <= 8);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::vector<std::vector<size_t>> all;
  do {
    all.push_back(order);
  } while (std::next_permutation(order.begin(), order.end()));
  return all;
}

}  // namespace nipo
