#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exec/workload_driver.h"
#include "hw/pmu.h"
#include "optimizer/progressive.h"
#include "storage/encoding.h"
#include "storage/table.h"

/// \file engine.h
/// The library's public facade.
///
/// An Engine owns a set of registered tables and a simulated-machine
/// configuration; queries are described by QuerySpec (operator chain +
/// aggregate payload) and executed either as a fixed-order baseline (the
/// paper's "common execution pattern") or under progressive optimization,
/// each in a single-threaded and a sharded multi-threaded form (the
/// *Parallel entry points; DESIGN.md "Parallel execution"). Each execution
/// runs on fresh simulated machines (cold caches, neutral predictor) --
/// one per worker thread in the parallel case -- so results are
/// deterministic and comparable.
///
/// Typical use (see examples/quickstart.cc):
/// \code
///   nipo::Engine engine;
///   engine.RegisterTable(std::move(lineitem));
///   nipo::QuerySpec query;
///   query.table = "lineitem";
///   query.ops = nipo::MakeQ6FullPredicates();
///   query.payload_columns = nipo::Q6PayloadColumns();
///   auto report = engine.ExecuteProgressive(query, {});
/// \endcode

namespace nipo {

/// \brief A multi-selection (optionally multi-probe) aggregation query.
struct QuerySpec {
  std::string table;
  /// Operator chain in its *initial* evaluation order.
  std::vector<OperatorSpec> ops;
  /// Columns multiplied into the SUM aggregate for qualifying tuples.
  std::vector<std::string> payload_columns;
};

/// \brief Baseline (fixed-order) execution result.
struct BaselineReport {
  DriveResult drive;
  std::vector<size_t> order;  ///< the order that was executed
};

/// \brief Options of the sharded (multi-threaded) entry points.
struct ParallelOptions {
  /// Worker thread count (>= 1); 1 reproduces the single-threaded
  /// VectorDriver execution bit-identically.
  size_t num_threads = 1;
  /// Tuples per morsel for ExecuteBaselineParallel. The progressive
  /// entry point uses ProgressiveConfig::vector_size instead, so its
  /// sampling unit matches the single-threaded driver.
  size_t morsel_size = 65'536;
  /// Optional cooperative cancellation token (see ParallelConfig::cancel):
  /// workers stop at the next morsel boundary once it reads true and the
  /// report comes back with drive.cancelled set and partial counts. The
  /// pointee must outlive the call.
  const std::atomic<bool>* cancel = nullptr;
};

/// \brief Sharded baseline execution result.
struct ParallelBaselineReport {
  ParallelDriveResult drive;
  std::vector<size_t> order;  ///< the order that was executed
};

/// \brief One query of a multi-query workload: what to compute
/// (QuerySpec) plus how to run it (the driver-level WorkloadTask fields;
/// see exec/workload_driver.h).
struct WorkloadQuery {
  /// Display name for reports (empty -> "q<index>").
  std::string name;
  QuerySpec query;
  /// Run under progressive optimization (otherwise fixed-order baseline).
  bool progressive = false;
  /// Progressive settings; `config.vector_size` is also the vector size
  /// of baseline queries.
  ProgressiveConfig config;
  /// Optional initial evaluation order (permutation of query.ops).
  std::optional<std::vector<size_t>> initial_order;
  /// Static scheduling priority (SchedulePolicy::kPriority): higher
  /// admits earlier. The other per-query scheduling inputs — the work
  /// estimate for kSrwf and the L3 footprint for kFootprintAware — are
  /// derived automatically from the cost model (cost/cache_model.h)
  /// against the registered tables; see Engine::ExecuteWorkload.
  int priority = 0;
  /// Simulated deadline relative to arrival (0 = none; see
  /// WorkloadTask::sim_deadline_msec): past it the query is killed
  /// cooperatively at a vector boundary (QueryOutcome::kDeadlineExceeded)
  /// or — with WorkloadOptions::shed_deadline — shed at admission.
  double sim_deadline_msec = 0;
  /// Absolute simulated cancellation instant (0 = none; see
  /// WorkloadTask::sim_cancel_msec): a user abort in simulated time,
  /// honoured at the next vector boundary (QueryOutcome::kCancelled).
  double sim_cancel_msec = 0;
};

/// \brief A workload: the query queue plus its scheduling options
/// (worker pool size, admission control, determinism, scheduling policy,
/// shared-L3 contention; see WorkloadOptions in exec/workload_driver.h).
struct WorkloadSpec {
  std::vector<WorkloadQuery> queries;
  WorkloadOptions options;
};

/// \brief Optimization strategy of the unified Execute entry point.
enum class ExecMode {
  kBaseline,     ///< fixed evaluation order (the paper's common pattern)
  kProgressive,  ///< in-flight reordering from counter windows
};

/// \brief Driver selection of the unified Execute entry point.
enum class ExecDriver {
  /// Solo when num_threads <= 1, sharded otherwise.
  kAuto,
  /// Single-threaded vector-at-a-time drive (VectorDriver).
  kSolo,
  /// Morsel-sharded multi-threaded drive (ParallelDriver), even at
  /// num_threads = 1 (which reproduces the solo counters bit-identically
  /// at vector_size == morsel size).
  kSharded,
};

/// \brief Options of the unified Engine::Execute entry point: one struct
/// selects the mode, the driver and the pricing instead of four
/// mode-specific method signatures.
struct ExecOptions {
  ExecMode mode = ExecMode::kBaseline;
  ExecDriver driver = ExecDriver::kAuto;
  /// Worker threads of the sharded driver (>= 1; ignored by kSolo).
  size_t num_threads = 1;
  /// Vector size of the solo baseline drive, morsel size of the sharded
  /// baseline drive. Progressive runs sample at progressive.vector_size
  /// instead, so their unit matches the optimizer's windows.
  size_t vector_size = 65'536;
  /// Progressive settings -- sampling vector size, re-optimization
  /// interval, pricing (kUnit / kBranchCycles / kSimdAware), validation
  /// -- consulted when mode == kProgressive.
  ProgressiveConfig progressive;
  /// Optional initial evaluation order (permutation of query.ops).
  std::optional<std::vector<size_t>> order;
  /// Optional cooperative cancellation token for sharded drives (see
  /// ParallelOptions::cancel). The pointee must outlive the call.
  const std::atomic<bool>* cancel = nullptr;
};

/// \brief Unified execution result: the mode-independent headline numbers
/// plus exactly one engaged mode-specific sub-report.
struct ExecReport {
  /// The (mode, driver) pair that actually ran; driver is resolved, never
  /// kAuto.
  ExecMode mode = ExecMode::kBaseline;
  ExecDriver driver = ExecDriver::kSolo;
  uint64_t input_tuples = 0;
  uint64_t qualifying_tuples = 0;
  /// Tuples pruned by zone maps before per-tuple work (0 over plain
  /// storage; see src/storage/encoding.h).
  uint64_t zone_skipped_tuples = 0;
  double aggregate = 0.0;
  PmuCounters counters;       ///< merged over workers for sharded drives
  double simulated_msec = 0;  ///< critical path for sharded drives
  std::vector<size_t> final_order;
  /// Mode-specific details; the one matching (mode, driver) is engaged.
  std::optional<BaselineReport> baseline;
  std::optional<ProgressiveReport> progressive;
  std::optional<ParallelBaselineReport> sharded_baseline;
  std::optional<ParallelProgressiveReport> sharded_progressive;
};

/// \brief Engine: table registry + simulated machine + query entry points.
class Engine {
 public:
  explicit Engine(HwConfig hw = HwConfig::XeonE5_2630v2());

  /// Registers a table; the engine takes ownership. AlreadyExists if the
  /// name is taken.
  Status RegisterTable(std::unique_ptr<Table> table);

  /// Look up a registered table.
  Result<const Table*> GetTable(const std::string& name) const;
  Result<Table*> GetMutableTable(const std::string& name);

  const HwConfig& hw_config() const { return hw_; }

  /// Event-reporting mode of every machine this engine builds (see
  /// ReportingMode in hw/pmu.h). kBatched — the default — and kScalar
  /// produce bit-identical counters; the scalar mode exists for
  /// differential tests and for measuring the batching speedup
  /// (bench/sim_throughput.cc).
  ReportingMode reporting_mode() const { return reporting_mode_; }
  void set_reporting_mode(ReportingMode mode) { reporting_mode_ = mode; }

  /// Unified entry point: executes `query` on fresh machines under the
  /// mode / driver / pricing selected by `options`. The older
  /// Execute{Baseline,Progressive,BaselineParallel,ProgressiveParallel}
  /// names below are thin shims over this call.
  Result<ExecReport> Execute(const QuerySpec& query,
                             const ExecOptions& options = {}) const;

  /// Unified entry point, workload form: executes a multi-query workload
  /// over a shared worker pool (ExecuteWorkload is the delegating shim).
  Result<WorkloadReport> Execute(const WorkloadSpec& spec) const;

  /// Re-encodes every column of a registered table into the per-block
  /// compressed format (dictionary / bit-packed / plain per 64K-value
  /// block, with zone maps; see src/storage/encoding.h). Queries keep
  /// working unchanged through the ColumnView scan API; an encodings-off
  /// engine stays bit-identical to the plain-array path. Idempotent:
  /// already-encoded columns are left alone.
  Result<TableEncodingStats> EncodeTable(const std::string& name,
                                         const EncodingOptions& options = {});

  /// Executes `query` with a fixed evaluation order on a fresh machine.
  /// `order`, if given, permutes query.ops; otherwise the spec order runs.
  /// Shim over Execute({kBaseline, kSolo}).
  Result<BaselineReport> ExecuteBaseline(
      const QuerySpec& query, size_t vector_size,
      std::optional<std::vector<size_t>> order = std::nullopt) const;

  /// Executes `query` under progressive optimization on a fresh machine.
  /// `initial_order`, if given, permutes query.ops before the first
  /// vector (the paper's "initial PEO" degree of freedom). Shim over
  /// Execute({kProgressive, kSolo}).
  Result<ProgressiveReport> ExecuteProgressive(
      const QuerySpec& query, const ProgressiveConfig& config,
      std::optional<std::vector<size_t>> initial_order = std::nullopt) const;

  /// Executes `query` with a fixed order sharded across
  /// `options.num_threads` worker threads, each on its own fresh machine
  /// (DESIGN.md "Parallel execution"). With num_threads = 1 the result is
  /// bit-identical to ExecuteBaseline at vector_size = morsel_size. Shim
  /// over Execute({kBaseline, kSharded}).
  Result<ParallelBaselineReport> ExecuteBaselineParallel(
      const QuerySpec& query, const ParallelOptions& options,
      std::optional<std::vector<size_t>> order = std::nullopt) const;

  /// Executes `query` under progressive optimization sharded across
  /// `options.num_threads` workers: per-morsel counter samples are merged
  /// by one shared coordinator, whose reorder decisions are broadcast to
  /// all workers at morsel boundaries. Morsel size is
  /// `config.vector_size`. Shim over Execute({kProgressive, kSharded}).
  Result<ParallelProgressiveReport> ExecuteProgressiveParallel(
      const QuerySpec& query, const ProgressiveConfig& config,
      const ParallelOptions& options,
      std::optional<std::vector<size_t>> initial_order = std::nullopt) const;

  /// Executes a multi-query workload over a shared worker pool with
  /// admission control (DESIGN.md "Workload execution"): up to
  /// `spec.options.max_concurrent` queries in flight, each on its own
  /// fresh private machine with its own progressive optimizer, scheduled
  /// across `spec.options.num_threads` workers at vector granularity.
  /// In deterministic mode (the default) every query's results and
  /// counters are bit-identical to running it alone through
  /// ExecuteBaseline / ExecuteProgressive, and the aggregate report's
  /// simulated makespan / latencies / queries-per-sec are bit-stable on
  /// any host.
  ///
  /// Service mode (DESIGN.md Section 7): `spec.options.arrival` switches
  /// the closed queue to an open arrival stream (uniform / Poisson /
  /// bursty over the seeded PRNG) with per-query latency decomposed into
  /// queue wait + in-service span and p50/p95/p99/max tails in the
  /// report; `spec.options.adaptive_admission` lets the admission limit
  /// self-tune inside [1, max_concurrent] from simulated interference
  /// feedback. Both compose with `spec.options.contention`, and every
  /// latency figure stays bit-stable. Shim over Execute(WorkloadSpec).
  Result<WorkloadReport> ExecuteWorkload(const WorkloadSpec& spec) const;

  /// Builds the fresh simulated machine every execution runs on (cold
  /// caches, neutral predictor). Single-threaded entry points run on this
  /// machine directly; the parallel driver clones it per worker
  /// (Pmu::CloneFresh), so the two paths cannot drift apart.
  Pmu NewMachine() const {
    Pmu pmu(hw_);
    pmu.set_reporting_mode(reporting_mode_);
    return pmu;
  }

 private:
  Result<std::unique_ptr<PipelineExecutor>> CompileQuery(
      const QuerySpec& query, Pmu* pmu, InstrumentationMode mode) const;

  HwConfig hw_;
  ReportingMode reporting_mode_ = ReportingMode::kBatched;
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

/// \brief All permutations of {0..n-1} in lexicographic order; the
/// evaluation enumerates these as the paper's "120 permutations" x-axis.
/// n is capped at 8 (40320 orders) to bound accidents.
std::vector<std::vector<size_t>> AllOrders(size_t n);

}  // namespace nipo
