#include "storage/column_view.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

/// \file column_view.cc
/// The booked scan paths. Plain columns alias their array and book the
/// same sequential/gather runs the executors historically booked against
/// raw pointers -- bit-identity of the encodings-off mode rests on these
/// two branches. Encoded columns decode the touched rows per overlapped
/// storage block (a kSimBlockRows execution block can straddle two
/// storage blocks, and morsels start at arbitrary offsets), booking loads
/// for the encoded payload actually read.

namespace nipo {

Result<ColumnView> ColumnView::Bind(const ColumnBase* column) {
  if (column == nullptr) return Status::InvalidArgument("null column");
  ColumnView view;
  view.column_ = column;
  view.width_ = static_cast<uint32_t>(column->value_width());
  view.type_ = column->type();
  view.size_ = column->size();
  view.encoded_ = dynamic_cast<const EncodedColumn*>(column);
  if (view.encoded_ == nullptr) {
    view.plain_data_ = static_cast<const uint8_t*>(column->data());
  }
  return view;
}

bool ColumnView::ZoneRefutesRange(size_t row_begin, size_t count,
                                  CompareOp op, double value) const {
  if (encoded_ == nullptr || count == 0) return false;
  const size_t first = encoded_->BlockIndexOf(row_begin);
  const size_t last = encoded_->BlockIndexOf(row_begin + count - 1);
  for (size_t b = first; b <= last; ++b) {
    if (!ZoneRefutes(encoded_->zone(b), op, value)) return false;
  }
  return true;
}

size_t ColumnView::ZoneChecksForRange(size_t row_begin, size_t count) const {
  if (encoded_ == nullptr || count == 0) return 0;
  const size_t first = encoded_->BlockIndexOf(row_begin);
  const size_t last = encoded_->BlockIndexOf(row_begin + count - 1);
  return last - first + 1;
}

double ColumnView::ZonePrunableFraction(CompareOp op, double value) const {
  if (encoded_ == nullptr || size_ == 0) return 0.0;
  size_t prunable = 0;
  for (size_t b = 0; b < encoded_->num_blocks(); ++b) {
    const ZoneMapEntry& zone = encoded_->zone(b);
    if (ZoneRefutes(zone, op, value)) prunable += zone.row_count;
  }
  return static_cast<double>(prunable) / static_cast<double>(size_);
}

ScanRun ColumnView::ScanBlock(Pmu* pmu, size_t block_begin,
                              const uint32_t* sel, size_t active,
                              DecodeScratch* scratch) const {
  NIPO_CHECK(pmu != nullptr && bound());
  if (encoded_ == nullptr) {
    // Plain: zero copy, historical booking (stride-1 run while dense,
    // gather under a selection).
    const uint8_t* block_base =
        plain_data_ + static_cast<uint64_t>(block_begin) * width_;
    if (sel == nullptr) {
      pmu->OnSequentialLoads(block_base, width_, active);
      return ScanRun{plain_data_, width_, type_, block_begin, nullptr};
    }
    pmu->OnGatherLoads(block_base, width_, sel, active);
    return ScanRun{plain_data_, width_, type_, block_begin, sel};
  }

  if (active == 0) {
    return ScanRun{scratch->values.data(), width_, type_, 0, nullptr};
  }

  if (sel == nullptr) {
    // Dense range. Fast path: entirely inside one plain-encoded storage
    // block -> alias the block payload, zero copy.
    const size_t first = encoded_->BlockIndexOf(block_begin);
    const size_t last = encoded_->BlockIndexOf(block_begin + active - 1);
    if (first == last &&
        encoded_->block(first).encoding == BlockEncoding::kPlain) {
      const EncodedBlock& block = encoded_->block(first);
      const uint8_t* base =
          block.plain.data() +
          (block_begin - block.row_begin) * static_cast<size_t>(width_);
      pmu->OnSequentialLoads(base, width_, active);
      return ScanRun{base, width_, type_, 0, nullptr};
    }
    scratch->values.resize(active * static_cast<size_t>(width_));
    size_t out = 0;
    size_t row = block_begin;
    size_t remaining = active;
    while (remaining > 0) {
      const EncodedBlock& block = encoded_->block(encoded_->BlockIndexOf(row));
      const size_t local = row - block.row_begin;
      const size_t take = std::min(remaining, block.row_count - local);
      DecodeDensePiece(pmu, block, local, take, scratch, out);
      out += take;
      row += take;
      remaining -= take;
    }
    return ScanRun{scratch->values.data(), width_, type_, 0, nullptr};
  }

  // Selected rows block_begin + sel[j] (sel is in row order): group by
  // storage block, gather the encoded payload per group, decode each
  // element to output position j so the run is dense over j.
  scratch->values.resize(active * static_cast<size_t>(width_));
  size_t j = 0;
  while (j < active) {
    const size_t row = block_begin + sel[j];
    const size_t b = encoded_->BlockIndexOf(row);
    const EncodedBlock& block = encoded_->block(b);
    size_t k = j + 1;
    while (k < active &&
           encoded_->BlockIndexOf(block_begin + sel[k]) == b) {
      ++k;
    }
    scratch->index_a.resize(k - j);
    for (size_t i = j; i < k; ++i) {
      scratch->index_a[i - j] =
          static_cast<uint32_t>(block_begin + sel[i] - block.row_begin);
    }
    DecodeGatherPiece(pmu, block, scratch->index_a.data(), k - j, scratch, j);
    j = k;
  }
  return ScanRun{scratch->values.data(), width_, type_, 0, nullptr};
}

ScanRun ColumnView::GatherRows(Pmu* pmu, const uint32_t* rows, size_t count,
                               DecodeScratch* scratch) const {
  NIPO_CHECK(pmu != nullptr && bound());
  if (encoded_ == nullptr) {
    // Plain: the historical dimension-probe gather booking.
    pmu->OnGatherLoads(plain_data_, width_, rows, count);
    return ScanRun{plain_data_, width_, type_, 0, rows};
  }
  scratch->values.resize(count * static_cast<size_t>(width_));
  size_t j = 0;
  while (j < count) {
    const size_t b = encoded_->BlockIndexOf(rows[j]);
    const EncodedBlock& block = encoded_->block(b);
    size_t k = j + 1;
    while (k < count && encoded_->BlockIndexOf(rows[k]) == b) ++k;
    scratch->index_a.resize(k - j);
    for (size_t i = j; i < k; ++i) {
      scratch->index_a[i - j] =
          static_cast<uint32_t>(rows[i] - block.row_begin);
    }
    DecodeGatherPiece(pmu, block, scratch->index_a.data(), k - j, scratch, j);
    j = k;
  }
  return ScanRun{scratch->values.data(), width_, type_, 0, nullptr};
}

void ColumnView::DecodeDensePiece(Pmu* pmu, const EncodedBlock& block,
                                  size_t local_begin, size_t count,
                                  DecodeScratch* scratch,
                                  size_t out_begin) const {
  uint8_t* out =
      scratch->values.data() + out_begin * static_cast<size_t>(width_);
  switch (block.encoding) {
    case BlockEncoding::kPlain: {
      pmu->OnSequentialLoads(
          block.plain.data() + local_begin * static_cast<size_t>(width_),
          width_, count);
      std::memcpy(out,
                  block.plain.data() +
                      local_begin * static_cast<size_t>(width_),
                  count * static_cast<size_t>(width_));
      return;
    }
    case BlockEncoding::kDictionary: {
      // Codes are read as a stride-1 run of code_width-byte values; the
      // dictionary lookups are a gather over the (tiny, cache-resident)
      // dictionary array.
      pmu->OnSequentialLoads(
          block.codes.data() +
              local_begin * static_cast<size_t>(block.code_width),
          block.code_width, count);
      scratch->index_b.resize(count);
      for (size_t i = 0; i < count; ++i) {
        scratch->index_b[i] = DecodeCode(block, local_begin + i);
      }
      pmu->OnGatherLoads(block.dict.data(), width_, scratch->index_b.data(),
                         count);
      pmu->OnInstructions(
          static_cast<uint64_t>(StorageCostModel::kDictDecodeInstructions) *
          count);
      CopyDictValues(block, scratch->index_b.data(), count, out);
      return;
    }
    case BlockEncoding::kBitPacked: {
      if (block.bit_width > 0) {
        const size_t first_word =
            local_begin * static_cast<size_t>(block.bit_width) / 64;
        const size_t last_word =
            ((local_begin + count) * static_cast<size_t>(block.bit_width) -
             1) /
            64;
        pmu->OnSequentialLoads(block.words.data() + first_word,
                               sizeof(uint64_t), last_word - first_word + 1);
      }
      pmu->OnInstructions(
          static_cast<uint64_t>(StorageCostModel::kPackDecodeInstructions) *
          count);
      UnpackValues(block, local_begin, nullptr, count, out);
      return;
    }
  }
}

void ColumnView::DecodeGatherPiece(Pmu* pmu, const EncodedBlock& block,
                                   const uint32_t* local_rows, size_t count,
                                   DecodeScratch* scratch,
                                   size_t out_begin) const {
  uint8_t* out =
      scratch->values.data() + out_begin * static_cast<size_t>(width_);
  switch (block.encoding) {
    case BlockEncoding::kPlain: {
      pmu->OnGatherLoads(block.plain.data(), width_, local_rows, count);
      for (size_t i = 0; i < count; ++i) {
        std::memcpy(out + i * static_cast<size_t>(width_),
                    block.plain.data() +
                        static_cast<size_t>(local_rows[i]) * width_,
                    width_);
      }
      return;
    }
    case BlockEncoding::kDictionary: {
      pmu->OnGatherLoads(block.codes.data(), block.code_width, local_rows,
                         count);
      scratch->index_b.resize(count);
      for (size_t i = 0; i < count; ++i) {
        scratch->index_b[i] = DecodeCode(block, local_rows[i]);
      }
      pmu->OnGatherLoads(block.dict.data(), width_, scratch->index_b.data(),
                         count);
      pmu->OnInstructions(
          static_cast<uint64_t>(StorageCostModel::kDictDecodeInstructions) *
          count);
      CopyDictValues(block, scratch->index_b.data(), count, out);
      return;
    }
    case BlockEncoding::kBitPacked: {
      if (block.bit_width > 0) {
        scratch->index_b.resize(count);
        for (size_t i = 0; i < count; ++i) {
          scratch->index_b[i] = static_cast<uint32_t>(
              static_cast<size_t>(local_rows[i]) * block.bit_width / 64);
        }
        pmu->OnGatherLoads(block.words.data(), sizeof(uint64_t),
                           scratch->index_b.data(), count);
      }
      pmu->OnInstructions(
          static_cast<uint64_t>(StorageCostModel::kPackDecodeInstructions) *
          count);
      UnpackValues(block, 0, local_rows, count, out);
      return;
    }
  }
}

uint32_t ColumnView::DecodeCode(const EncodedBlock& block, size_t local_row) {
  const uint8_t* p = block.codes.data() +
                     static_cast<uint64_t>(local_row) * block.code_width;
  switch (block.code_width) {
    case 1:
      return *p;
    case 2: {
      uint16_t v;
      std::memcpy(&v, p, 2);
      return v;
    }
    default: {
      uint32_t v;
      std::memcpy(&v, p, 4);
      return v;
    }
  }
}

void ColumnView::CopyDictValues(const EncodedBlock& block,
                                const uint32_t* codes, size_t count,
                                uint8_t* out) const {
  const size_t w = width_;
  for (size_t i = 0; i < count; ++i) {
    std::memcpy(out + i * w,
                block.dict.data() + static_cast<size_t>(codes[i]) * w, w);
  }
}

void ColumnView::UnpackValues(const EncodedBlock& block, size_t local_begin,
                              const uint32_t* local_rows, size_t count,
                              uint8_t* out) const {
  auto offset_at = [&](size_t i) -> uint64_t {
    if (block.bit_width == 0) return 0;
    const size_t local = local_rows ? local_rows[i] : local_begin + i;
    return ExtractBits(block.words.data(), local, block.bit_width);
  };
  if (type_ == DataType::kInt32) {
    int32_t* dst = reinterpret_cast<int32_t*>(out);
    for (size_t i = 0; i < count; ++i) {
      dst[i] = static_cast<int32_t>(static_cast<int64_t>(
          static_cast<uint64_t>(block.frame_base) + offset_at(i)));
    }
  } else {
    int64_t* dst = reinterpret_cast<int64_t*>(out);
    for (size_t i = 0; i < count; ++i) {
      dst[i] = static_cast<int64_t>(static_cast<uint64_t>(block.frame_base) +
                                    offset_at(i));
    }
  }
}

double ColumnView::ValueAsDouble(size_t row) const {
  if (encoded_ != nullptr) return encoded_->ValueAsDouble(row);
  const uint8_t* addr = plain_data_ + static_cast<uint64_t>(row) * width_;
  switch (type_) {
    case DataType::kInt32:
      return static_cast<double>(*reinterpret_cast<const int32_t*>(addr));
    case DataType::kInt64:
      return static_cast<double>(*reinterpret_cast<const int64_t*>(addr));
    case DataType::kDouble:
      return *reinterpret_cast<const double*>(addr);
  }
  return 0.0;
}

int64_t ColumnView::ValueAsInt64(size_t row) const {
  if (encoded_ != nullptr) return encoded_->ValueAsInt64(row);
  const uint8_t* addr = plain_data_ + static_cast<uint64_t>(row) * width_;
  switch (type_) {
    case DataType::kInt32:
      return *reinterpret_cast<const int32_t*>(addr);
    case DataType::kInt64:
      return *reinterpret_cast<const int64_t*>(addr);
    case DataType::kDouble:
      return static_cast<int64_t>(*reinterpret_cast<const double*>(addr));
  }
  return 0;
}

}  // namespace nipo
