#include "storage/table.h"

/// \file table.cc
/// Schema field lookup/printing and Table column management (add, find,
/// length consistency checks).

namespace nipo {

Result<size_t> Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::NotFound("no field named '" + name + "'");
}

std::string Schema::ToString() const {
  std::string out = "schema{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i) out += ", ";
    out += fields_[i].name;
    out += ": ";
    out += DataTypeToString(fields_[i].type);
  }
  out += "}";
  return out;
}

Status Table::AddColumn(std::unique_ptr<ColumnBase> column) {
  if (column == nullptr) {
    return Status::InvalidArgument("null column");
  }
  if (index_.count(column->name()) != 0) {
    return Status::AlreadyExists("column '" + column->name() +
                                 "' already in table '" + name_ + "'");
  }
  if (columns_.empty()) {
    num_rows_ = column->size();
  } else if (column->size() != num_rows_) {
    return Status::InvalidArgument(
        "column '" + column->name() + "' has " +
        std::to_string(column->size()) + " rows, table '" + name_ + "' has " +
        std::to_string(num_rows_));
  }
  index_[column->name()] = columns_.size();
  columns_.push_back(std::move(column));
  return Status::OK();
}

Status Table::ReplaceColumn(std::unique_ptr<ColumnBase> column) {
  if (column == nullptr) {
    return Status::InvalidArgument("null column");
  }
  auto it = index_.find(column->name());
  if (it == index_.end()) {
    return Status::NotFound("no column '" + column->name() + "' in table '" +
                            name_ + "'");
  }
  const ColumnBase& existing = *columns_[it->second];
  if (column->size() != existing.size()) {
    return Status::InvalidArgument(
        "replacement column '" + column->name() + "' has " +
        std::to_string(column->size()) + " rows, existing has " +
        std::to_string(existing.size()));
  }
  if (column->type() != existing.type()) {
    return Status::TypeMismatch("replacement column '" + column->name() +
                                "' changes type");
  }
  columns_[it->second] = std::move(column);
  return Status::OK();
}

Result<const ColumnBase*> Table::GetColumn(const std::string& column_name) const {
  auto it = index_.find(column_name);
  if (it == index_.end()) {
    return Status::NotFound("no column '" + column_name + "' in table '" +
                            name_ + "'");
  }
  return static_cast<const ColumnBase*>(columns_[it->second].get());
}

Result<ColumnBase*> Table::GetMutableColumn(const std::string& column_name) {
  auto it = index_.find(column_name);
  if (it == index_.end()) {
    return Status::NotFound("no column '" + column_name + "' in table '" +
                            name_ + "'");
  }
  return columns_[it->second].get();
}

Schema Table::schema() const {
  std::vector<FieldSpec> fields;
  fields.reserve(columns_.size());
  for (const auto& col : columns_) {
    fields.push_back(FieldSpec{col->name(), col->type()});
  }
  return Schema(std::move(fields));
}

}  // namespace nipo
