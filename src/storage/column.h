#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/result.h"

/// \file column.h
/// Columnar storage. The engine is a column store (Section 2.1 of the
/// paper assumes a column-oriented layout): each attribute lives in its own
/// contiguous, densely packed array so a selection touches only the bytes
/// of the columns it evaluates.

namespace nipo {

/// Physical type of a column.
enum class DataType : int {
  kInt32,
  kInt64,
  kDouble,
};

/// \brief Human-readable type name ("int32", ...).
std::string_view DataTypeToString(DataType type);

/// \brief Width of one value of `type` in bytes.
size_t DataTypeWidth(DataType type);

template <typename T>
struct DataTypeOf;
template <>
struct DataTypeOf<int32_t> {
  static constexpr DataType value = DataType::kInt32;
};
template <>
struct DataTypeOf<int64_t> {
  static constexpr DataType value = DataType::kInt64;
};
template <>
struct DataTypeOf<double> {
  static constexpr DataType value = DataType::kDouble;
};

/// \brief Type-erased base of all columns. Owns the name and exposes the
/// type/size; typed access goes through Column<T>.
class ColumnBase {
 public:
  ColumnBase(std::string name, DataType type)
      : name_(std::move(name)), type_(type) {}
  virtual ~ColumnBase() = default;

  const std::string& name() const { return name_; }
  DataType type() const { return type_; }

  /// Number of values in the column.
  virtual size_t size() const = 0;

  /// Address of the first value; used by the hardware simulator to derive
  /// cache-line addresses for accesses into this column.
  virtual const void* data() const = 0;

  /// Width of one value in bytes.
  size_t value_width() const { return DataTypeWidth(type_); }

 private:
  std::string name_;
  DataType type_;
};

/// \brief A densely packed, typed column.
template <typename T>
class Column : public ColumnBase {
 public:
  explicit Column(std::string name)
      : ColumnBase(std::move(name), DataTypeOf<T>::value) {}
  Column(std::string name, std::vector<T> values)
      : ColumnBase(std::move(name), DataTypeOf<T>::value),
        values_(std::move(values)) {}

  size_t size() const override { return values_.size(); }
  const void* data() const override { return values_.data(); }

  void Reserve(size_t n) { values_.reserve(n); }
  void Append(T value) { values_.push_back(value); }
  void Resize(size_t n) { values_.resize(n); }

  T operator[](size_t i) const { return values_[i]; }
  T& operator[](size_t i) { return values_[i]; }

  std::span<const T> values() const { return values_; }
  std::vector<T>& mutable_values() { return values_; }

 private:
  std::vector<T> values_;
};

/// \brief Downcasts a ColumnBase to Column<T>, checking the type.
/// Returns TypeMismatch if the physical type does not match T.
template <typename T>
Result<const Column<T>*> AsColumn(const ColumnBase* column) {
  if (column == nullptr) {
    return Status::InvalidArgument("null column");
  }
  if (column->type() != DataTypeOf<T>::value) {
    return Status::TypeMismatch(
        "column '" + column->name() + "' is " +
        std::string(DataTypeToString(column->type())));
  }
  return static_cast<const Column<T>*>(column);
}

}  // namespace nipo
