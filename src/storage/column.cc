#include "storage/column.h"

/// \file column.cc
/// DataType spelling and the non-template pieces of the typed column
/// implementations.

namespace nipo {

std::string_view DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt32:
      return "int32";
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
  }
  return "unknown";
}

size_t DataTypeWidth(DataType type) {
  switch (type) {
    case DataType::kInt32:
      return 4;
    case DataType::kInt64:
      return 8;
    case DataType::kDouble:
      return 8;
  }
  return 0;
}

}  // namespace nipo
