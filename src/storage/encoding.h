#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/compare.h"
#include "common/result.h"
#include "storage/column.h"

/// \file encoding.h
/// Compressed columnar storage (DESIGN.md Section 10).
///
/// An EncodedColumn splits a column into fixed-size blocks (64K values by
/// default) and stores each block in the cheapest of three physical
/// encodings: a per-block sorted **dictionary** with narrow codes, a
/// frame-of-reference **bit-packing** for integers, or a **plain** copy
/// when neither wins. Every block additionally carries a min/max **zone
/// map** so scans can refute whole blocks against a predicate before any
/// per-tuple work.
///
/// The encodings are chosen per block by byte size, deterministically, so
/// identical inputs always produce identical physical layouts (the repo's
/// bit-equality gates depend on this). Executors never touch these
/// structures directly: they scan through storage/column_view.h, which
/// books the *encoded* bytes actually loaded on the simulated machine --
/// compression is therefore visible in the L1/LLC counters, exactly like
/// a narrower plain column would be.
///
/// Zone-map semantics match execution semantics: the SIMD selection
/// kernel compares every type in the double domain (exec/simd.cc converts
/// int64 via Int64ToDouble), so zone min/max are computed over the
/// double-cast values and refutation with ZoneRefutes() can never
/// disagree with a full scan. NaN is tracked separately: a NaN value
/// fails every comparison except kNe, so a block containing NaN is never
/// refuted for kNe.

namespace nipo {

/// Per-block physical encoding chosen by EncodedColumn::Encode.
enum class BlockEncoding : int { kPlain, kDictionary, kBitPacked };

std::string_view BlockEncodingToString(BlockEncoding encoding);

/// \brief Knobs of EncodedColumn::Encode. Defaults match the benches.
struct EncodingOptions {
  /// Values per storage block (and zone-map granularity).
  size_t block_values = 65536;
  bool enable_dictionary = true;
  bool enable_bit_packing = true;
  /// A block dictionary larger than this falls through to bit-packing or
  /// plain storage (keeps the per-block decode table cache-resident).
  size_t max_dictionary_values = 4096;
};

/// \brief Min/max statistics of one block, in the double domain the
/// selection kernels compare in. min/max are over non-NaN values only; a
/// block of only NaNs keeps the empty sentinel (min > max).
struct ZoneMapEntry {
  size_t row_begin = 0;
  size_t row_count = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  bool has_nan = false;
};

/// \brief True iff `zone` proves that no row of its block can satisfy
/// `op value` -- the block may then be skipped without changing results.
/// Conservative under NaN (a NaN value passes only kNe, a NaN constant
/// never refutes).
bool ZoneRefutes(const ZoneMapEntry& zone, CompareOp op, double value);

/// \brief Reads value `index` of a `bits`-wide little-endian packed
/// stream. `bits` must be in [1, 64]; values may straddle two words.
inline uint64_t ExtractBits(const uint64_t* words, size_t index,
                            uint32_t bits) {
  const uint64_t bit_pos = static_cast<uint64_t>(index) * bits;
  const size_t word = static_cast<size_t>(bit_pos >> 6);
  const uint32_t off = static_cast<uint32_t>(bit_pos & 63);
  uint64_t v = words[word] >> off;
  if (off + bits > 64) v |= words[word + 1] << (64 - off);
  if (bits < 64) v &= (uint64_t{1} << bits) - 1;
  return v;
}

/// \brief Writes value `index` of a `bits`-wide little-endian packed
/// stream (the buffer must be zero-initialized; values are OR-ed in).
inline void PackBits(uint64_t* words, size_t index, uint32_t bits,
                     uint64_t value) {
  const uint64_t bit_pos = static_cast<uint64_t>(index) * bits;
  const size_t word = static_cast<size_t>(bit_pos >> 6);
  const uint32_t off = static_cast<uint32_t>(bit_pos & 63);
  if (bits < 64) value &= (uint64_t{1} << bits) - 1;
  words[word] |= value << off;
  if (off + bits > 64) words[word + 1] |= value >> (64 - off);
}

/// \brief One encoded block. Exactly one payload is populated, selected
/// by `encoding`.
struct EncodedBlock {
  BlockEncoding encoding = BlockEncoding::kPlain;
  size_t row_begin = 0;
  size_t row_count = 0;

  /// kPlain: row_count native-width values.
  std::vector<uint8_t> plain;

  /// kDictionary: row_count codes of code_width bytes (1/2/4,
  /// little-endian) indexing a deterministic sorted dictionary of
  /// dict_size native-width values.
  std::vector<uint8_t> codes;
  uint32_t code_width = 0;
  std::vector<uint8_t> dict;
  size_t dict_size = 0;

  /// kBitPacked (integer columns): frame-of-reference offsets from
  /// frame_base at bit_width bits each, packed into 64-bit words.
  /// bit_width 0 means every value equals frame_base (no words at all).
  std::vector<uint64_t> words;
  uint32_t bit_width = 0;
  int64_t frame_base = 0;

  /// Bytes of the scan payload (codes / words / plain values; the
  /// dictionary counts too -- it is data a scan must touch).
  size_t encoded_bytes() const;
};

/// \brief A column stored in per-block compressed form with zone maps.
///
/// EncodedColumn is a ColumnBase, so it registers in a Table like any
/// plain column; executors that go through ColumnView (they all do, see
/// the lint step in ci/check.sh) decode transparently. data() exposes the
/// first block's payload for address-based identity only -- nothing may
/// scan through it.
class EncodedColumn : public ColumnBase {
 public:
  /// Encodes `source` (a plain column) block by block. The choice per
  /// block is by encoded byte size: dictionary when the block has few
  /// distinct values, frame-of-reference bit-packing for integers,
  /// otherwise a plain copy.
  static Result<std::unique_ptr<EncodedColumn>> Encode(
      const ColumnBase& source, const EncodingOptions& options = {});

  size_t size() const override { return num_values_; }
  const void* data() const override;

  size_t block_values() const { return block_values_; }
  size_t num_blocks() const { return blocks_.size(); }
  const EncodedBlock& block(size_t i) const { return blocks_[i]; }
  const ZoneMapEntry& zone(size_t i) const { return zones_[i]; }

  /// Index of the block containing `row`.
  size_t BlockIndexOf(size_t row) const { return row / block_values_; }

  /// Total scan-payload bytes across blocks (dictionaries included).
  size_t total_encoded_bytes() const { return total_encoded_bytes_; }

  /// Average encoded bytes a full scan touches per value -- what the
  /// cost model prices instead of value_width() for encoded columns.
  double scan_bytes_per_value() const {
    return num_values_ == 0 ? static_cast<double>(value_width())
                            : static_cast<double>(total_encoded_bytes_) /
                                  static_cast<double>(num_values_);
  }

  /// Average per-value decode instructions across blocks (0 for an
  /// all-plain column), from StorageCostModel.
  double decode_instructions_per_value() const {
    return decode_instructions_per_value_;
  }

  /// Decodes rows [row_begin, row_begin + count) into `out` (native
  /// width). Unbooked -- the scan-path booking lives in ColumnView.
  void DecodeRange(size_t row_begin, size_t count, void* out) const;

  /// Single-value random access, unbooked (reference checks and tests).
  double ValueAsDouble(size_t row) const;
  int64_t ValueAsInt64(size_t row) const;

 private:
  EncodedColumn(std::string name, DataType type)
      : ColumnBase(std::move(name), type) {}

  size_t num_values_ = 0;
  size_t block_values_ = 0;
  size_t total_encoded_bytes_ = 0;
  double decode_instructions_per_value_ = 0.0;
  std::vector<EncodedBlock> blocks_;
  std::vector<ZoneMapEntry> zones_;
};

/// \brief Instruction costs of decoding, booked by ColumnView per decoded
/// value (and per zone check); priced by cost/counter_model through the
/// executor's column stats.
struct StorageCostModel {
  /// Dictionary decode: code load is booked as a real load; this is the
  /// index arithmetic per value.
  static constexpr double kDictDecodeInstructions = 1.0;
  /// Bit-pack decode: shift/mask/add per value.
  static constexpr double kPackDecodeInstructions = 2.0;
  /// Zone-map check: one min and one max compare per consulted block.
  static constexpr double kZoneCheckInstructions = 2.0;
};

/// \brief Result of encoding a table in place (EncodeTableColumns).
struct TableEncodingStats {
  size_t columns_encoded = 0;
  size_t plain_bytes = 0;
  size_t encoded_bytes = 0;
};

/// \brief Replaces every plain column of `table` with its encoded form
/// (columns already encoded are left alone). Returns size stats.
class Table;  // storage/table.h
Result<TableEncodingStats> EncodeTableColumns(
    Table* table, const EncodingOptions& options = {});

}  // namespace nipo
