#include "storage/encoding.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "storage/table.h"

/// \file encoding.cc
/// Per-block encoding selection and the decode paths. Everything here is
/// deterministic: dictionaries are sorted by value bit pattern (total
/// order even for NaN doubles), encodings are chosen by strict byte-size
/// comparison, and decode is bit-exact for every type -- the repo's
/// bit-equality gates rely on encode(decode(x)) == x at the uint64 level.

namespace nipo {

namespace {

/// Total-order bit pattern of a value: the dictionary sort key. Using the
/// raw pattern (not operator<) keeps NaN and -0.0 doubles deterministic
/// and round-trip exact.
inline uint64_t PatternOf(int32_t v) {
  return static_cast<uint64_t>(static_cast<uint32_t>(v));
}
inline uint64_t PatternOf(int64_t v) { return static_cast<uint64_t>(v); }
inline uint64_t PatternOf(double v) { return std::bit_cast<uint64_t>(v); }

template <typename T>
inline T FromPattern(uint64_t pattern);
template <>
inline int32_t FromPattern<int32_t>(uint64_t pattern) {
  return static_cast<int32_t>(static_cast<uint32_t>(pattern));
}
template <>
inline int64_t FromPattern<int64_t>(uint64_t pattern) {
  return static_cast<int64_t>(pattern);
}
template <>
inline double FromPattern<double>(uint64_t pattern) {
  return std::bit_cast<double>(pattern);
}

template <typename T>
inline double AsDouble(T v) {
  return static_cast<double>(v);
}

constexpr bool IsIntegerType(DataType type) {
  return type == DataType::kInt32 || type == DataType::kInt64;
}

uint32_t CodeWidthFor(size_t dict_size) {
  if (dict_size <= (size_t{1} << 8)) return 1;
  if (dict_size <= (size_t{1} << 16)) return 2;
  return 4;
}

inline uint32_t ReadCode(const uint8_t* codes, uint32_t code_width,
                         size_t index) {
  const uint8_t* p = codes + static_cast<uint64_t>(index) * code_width;
  switch (code_width) {
    case 1:
      return *p;
    case 2: {
      uint16_t v;
      std::memcpy(&v, p, 2);
      return v;
    }
    default: {
      uint32_t v;
      std::memcpy(&v, p, 4);
      return v;
    }
  }
}

inline void WriteCode(uint8_t* codes, uint32_t code_width, size_t index,
                      uint32_t code) {
  uint8_t* p = codes + static_cast<uint64_t>(index) * code_width;
  switch (code_width) {
    case 1:
      *p = static_cast<uint8_t>(code);
      return;
    case 2: {
      const uint16_t v = static_cast<uint16_t>(code);
      std::memcpy(p, &v, 2);
      return;
    }
    default:
      std::memcpy(p, &code, 4);
      return;
  }
}

/// Encodes one block of `n` values starting at `src`, choosing the
/// smallest representation, and fills the zone map over the double-cast
/// values (the domain the selection kernels compare in).
template <typename T>
void EncodeBlock(const T* src, size_t row_begin, size_t n,
                 const EncodingOptions& options, EncodedBlock* block,
                 ZoneMapEntry* zone) {
  constexpr size_t kWidth = sizeof(T);
  block->row_begin = row_begin;
  block->row_count = n;
  zone->row_begin = row_begin;
  zone->row_count = n;
  for (size_t i = 0; i < n; ++i) {
    const double d = AsDouble(src[i]);
    if (std::isnan(d)) {
      zone->has_nan = true;
      continue;
    }
    zone->min = std::min(zone->min, d);
    zone->max = std::max(zone->max, d);
  }

  const size_t plain_bytes = n * kWidth;

  // Dictionary candidate: sorted unique bit patterns.
  std::vector<uint64_t> patterns;
  size_t dict_bytes = 0;
  bool dict_ok = false;
  if (options.enable_dictionary) {
    patterns.reserve(std::min(n, options.max_dictionary_values + 1));
    for (size_t i = 0; i < n; ++i) patterns.push_back(PatternOf(src[i]));
    std::sort(patterns.begin(), patterns.end());
    patterns.erase(std::unique(patterns.begin(), patterns.end()),
                   patterns.end());
    if (patterns.size() <= options.max_dictionary_values) {
      dict_bytes = n * CodeWidthFor(patterns.size()) +
                   patterns.size() * kWidth;
      dict_ok = true;
    }
  }

  // Frame-of-reference bit-packing candidate (integers only). The range
  // is computed in uint64 so int64 extremes wrap correctly; a range
  // needing the full native width never beats plain by size.
  uint32_t bit_width = 0;
  int64_t frame_base = 0;
  size_t pack_bytes = 0;
  bool pack_ok = false;
  if (options.enable_bit_packing && IsIntegerType(DataTypeOf<T>::value) &&
      n > 0) {
    int64_t lo = static_cast<int64_t>(src[0]);
    int64_t hi = lo;
    for (size_t i = 1; i < n; ++i) {
      const int64_t v = static_cast<int64_t>(src[i]);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const uint64_t range =
        static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
    bit_width = static_cast<uint32_t>(std::bit_width(range));
    frame_base = lo;
    pack_bytes = ((n * static_cast<size_t>(bit_width) + 63) / 64) * 8;
    pack_ok = true;
  }

  size_t best_bytes = plain_bytes;
  BlockEncoding encoding = BlockEncoding::kPlain;
  if (dict_ok && dict_bytes < best_bytes) {
    best_bytes = dict_bytes;
    encoding = BlockEncoding::kDictionary;
  }
  if (pack_ok && pack_bytes < best_bytes) {
    best_bytes = pack_bytes;
    encoding = BlockEncoding::kBitPacked;
  }

  block->encoding = encoding;
  switch (encoding) {
    case BlockEncoding::kPlain: {
      block->plain.resize(plain_bytes);
      std::memcpy(block->plain.data(), src, plain_bytes);
      return;
    }
    case BlockEncoding::kDictionary: {
      block->code_width = CodeWidthFor(patterns.size());
      block->dict_size = patterns.size();
      block->dict.resize(patterns.size() * kWidth);
      for (size_t i = 0; i < patterns.size(); ++i) {
        const T v = FromPattern<T>(patterns[i]);
        std::memcpy(block->dict.data() + i * kWidth, &v, kWidth);
      }
      block->codes.resize(n * block->code_width);
      for (size_t i = 0; i < n; ++i) {
        const auto it = std::lower_bound(patterns.begin(), patterns.end(),
                                         PatternOf(src[i]));
        WriteCode(block->codes.data(), block->code_width, i,
                  static_cast<uint32_t>(it - patterns.begin()));
      }
      return;
    }
    case BlockEncoding::kBitPacked: {
      block->bit_width = bit_width;
      block->frame_base = frame_base;
      if (bit_width > 0) {
        block->words.assign(
            (n * static_cast<size_t>(bit_width) + 63) / 64, 0);
        for (size_t i = 0; i < n; ++i) {
          const uint64_t offset =
              static_cast<uint64_t>(static_cast<int64_t>(src[i])) -
              static_cast<uint64_t>(frame_base);
          PackBits(block->words.data(), i, bit_width, offset);
        }
      }
      return;
    }
  }
}

template <typename T>
inline T DecodeOne(const EncodedBlock& block, size_t local_row) {
  switch (block.encoding) {
    case BlockEncoding::kPlain: {
      T v;
      std::memcpy(&v, block.plain.data() + local_row * sizeof(T), sizeof(T));
      return v;
    }
    case BlockEncoding::kDictionary: {
      const uint32_t code =
          ReadCode(block.codes.data(), block.code_width, local_row);
      T v;
      std::memcpy(&v, block.dict.data() + code * sizeof(T), sizeof(T));
      return v;
    }
    case BlockEncoding::kBitPacked: {
      uint64_t offset = 0;
      if (block.bit_width > 0) {
        offset = ExtractBits(block.words.data(), local_row, block.bit_width);
      }
      return static_cast<T>(static_cast<int64_t>(
          static_cast<uint64_t>(block.frame_base) + offset));
    }
  }
  return T{};
}

template <typename T>
void DecodeBlockRange(const EncodedBlock& block, size_t local_begin,
                      size_t count, T* out) {
  switch (block.encoding) {
    case BlockEncoding::kPlain:
      std::memcpy(out, block.plain.data() + local_begin * sizeof(T),
                  count * sizeof(T));
      return;
    case BlockEncoding::kDictionary: {
      const T* dict = reinterpret_cast<const T*>(block.dict.data());
      for (size_t i = 0; i < count; ++i) {
        out[i] = dict[ReadCode(block.codes.data(), block.code_width,
                               local_begin + i)];
      }
      return;
    }
    case BlockEncoding::kBitPacked: {
      if (block.bit_width == 0) {
        const T v = static_cast<T>(block.frame_base);
        for (size_t i = 0; i < count; ++i) out[i] = v;
        return;
      }
      for (size_t i = 0; i < count; ++i) {
        const uint64_t offset =
            ExtractBits(block.words.data(), local_begin + i, block.bit_width);
        out[i] = static_cast<T>(static_cast<int64_t>(
            static_cast<uint64_t>(block.frame_base) + offset));
      }
      return;
    }
  }
}

double DecodeInstructionsFor(BlockEncoding encoding) {
  switch (encoding) {
    case BlockEncoding::kPlain:
      return 0.0;
    case BlockEncoding::kDictionary:
      return StorageCostModel::kDictDecodeInstructions;
    case BlockEncoding::kBitPacked:
      return StorageCostModel::kPackDecodeInstructions;
  }
  return 0.0;
}

}  // namespace

std::string_view BlockEncodingToString(BlockEncoding encoding) {
  switch (encoding) {
    case BlockEncoding::kPlain:
      return "plain";
    case BlockEncoding::kDictionary:
      return "dictionary";
    case BlockEncoding::kBitPacked:
      return "bit-packed";
  }
  return "?";
}

bool ZoneRefutes(const ZoneMapEntry& zone, CompareOp op, double value) {
  // NaN values pass only kNe; min/max cover the non-NaN rows. An empty
  // non-NaN set (min > max) refutes every op except kNe-with-NaN-present.
  if (op == CompareOp::kNe) {
    // Every row fails `!= value` only if every row equals `value`.
    return !zone.has_nan && zone.min == zone.max && zone.min == value;
  }
  if (zone.min > zone.max) return true;  // all NaN: all fail non-kNe ops
  switch (op) {
    case CompareOp::kLt:
      return !(zone.min < value);
    case CompareOp::kLe:
      return !(zone.min <= value);
    case CompareOp::kGt:
      return !(zone.max > value);
    case CompareOp::kGe:
      return !(zone.max >= value);
    case CompareOp::kEq:
      return !(zone.min <= value && value <= zone.max);
    case CompareOp::kNe:
      break;  // handled above
  }
  return false;
}

size_t EncodedBlock::encoded_bytes() const {
  switch (encoding) {
    case BlockEncoding::kPlain:
      return plain.size();
    case BlockEncoding::kDictionary:
      return codes.size() + dict.size();
    case BlockEncoding::kBitPacked:
      return words.size() * sizeof(uint64_t);
  }
  return 0;
}

Result<std::unique_ptr<EncodedColumn>> EncodedColumn::Encode(
    const ColumnBase& source, const EncodingOptions& options) {
  if (options.block_values == 0) {
    return Status::InvalidArgument("block_values must be positive");
  }
  if (options.max_dictionary_values > (size_t{1} << 31)) {
    return Status::InvalidArgument("max_dictionary_values exceeds code range");
  }
  if (dynamic_cast<const EncodedColumn*>(&source) != nullptr) {
    return Status::InvalidArgument("column '" + source.name() +
                                   "' is already encoded");
  }
  auto encoded = std::unique_ptr<EncodedColumn>(
      new EncodedColumn(source.name(), source.type()));
  encoded->num_values_ = source.size();
  encoded->block_values_ = options.block_values;
  const size_t n = source.size();
  const size_t num_blocks =
      n == 0 ? 0 : (n + options.block_values - 1) / options.block_values;
  encoded->blocks_.resize(num_blocks);
  encoded->zones_.resize(num_blocks);
  double decode_instructions = 0.0;
  for (size_t b = 0; b < num_blocks; ++b) {
    const size_t begin = b * options.block_values;
    const size_t count = std::min(options.block_values, n - begin);
    switch (source.type()) {
      case DataType::kInt32:
        EncodeBlock(static_cast<const int32_t*>(source.data()) + begin, begin,
                    count, options, &encoded->blocks_[b],
                    &encoded->zones_[b]);
        break;
      case DataType::kInt64:
        EncodeBlock(static_cast<const int64_t*>(source.data()) + begin, begin,
                    count, options, &encoded->blocks_[b],
                    &encoded->zones_[b]);
        break;
      case DataType::kDouble:
        EncodeBlock(static_cast<const double*>(source.data()) + begin, begin,
                    count, options, &encoded->blocks_[b],
                    &encoded->zones_[b]);
        break;
    }
    encoded->total_encoded_bytes_ += encoded->blocks_[b].encoded_bytes();
    decode_instructions +=
        DecodeInstructionsFor(encoded->blocks_[b].encoding) *
        static_cast<double>(count);
  }
  encoded->decode_instructions_per_value_ =
      n == 0 ? 0.0 : decode_instructions / static_cast<double>(n);
  return encoded;
}

const void* EncodedColumn::data() const {
  if (blocks_.empty()) return nullptr;
  const EncodedBlock& b = blocks_.front();
  switch (b.encoding) {
    case BlockEncoding::kPlain:
      return b.plain.data();
    case BlockEncoding::kDictionary:
      return b.codes.data();
    case BlockEncoding::kBitPacked:
      return b.words.empty() ? nullptr : b.words.data();
  }
  return nullptr;
}

void EncodedColumn::DecodeRange(size_t row_begin, size_t count,
                                void* out) const {
  NIPO_CHECK(row_begin + count <= num_values_);
  uint8_t* dst = static_cast<uint8_t*>(out);
  size_t row = row_begin;
  size_t remaining = count;
  while (remaining > 0) {
    const size_t b = BlockIndexOf(row);
    const EncodedBlock& block = blocks_[b];
    const size_t local = row - block.row_begin;
    const size_t take = std::min(remaining, block.row_count - local);
    switch (type()) {
      case DataType::kInt32:
        DecodeBlockRange(block, local, take,
                         reinterpret_cast<int32_t*>(dst));
        break;
      case DataType::kInt64:
        DecodeBlockRange(block, local, take,
                         reinterpret_cast<int64_t*>(dst));
        break;
      case DataType::kDouble:
        DecodeBlockRange(block, local, take, reinterpret_cast<double*>(dst));
        break;
    }
    dst += take * value_width();
    row += take;
    remaining -= take;
  }
}

double EncodedColumn::ValueAsDouble(size_t row) const {
  NIPO_CHECK(row < num_values_);
  const EncodedBlock& block = blocks_[BlockIndexOf(row)];
  const size_t local = row - block.row_begin;
  switch (type()) {
    case DataType::kInt32:
      return static_cast<double>(DecodeOne<int32_t>(block, local));
    case DataType::kInt64:
      return static_cast<double>(DecodeOne<int64_t>(block, local));
    case DataType::kDouble:
      return DecodeOne<double>(block, local);
  }
  return 0.0;
}

int64_t EncodedColumn::ValueAsInt64(size_t row) const {
  NIPO_CHECK(row < num_values_);
  const EncodedBlock& block = blocks_[BlockIndexOf(row)];
  const size_t local = row - block.row_begin;
  switch (type()) {
    case DataType::kInt32:
      return DecodeOne<int32_t>(block, local);
    case DataType::kInt64:
      return DecodeOne<int64_t>(block, local);
    case DataType::kDouble:
      return static_cast<int64_t>(DecodeOne<double>(block, local));
  }
  return 0;
}

Result<TableEncodingStats> EncodeTableColumns(Table* table,
                                              const EncodingOptions& options) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  TableEncodingStats stats;
  for (size_t i = 0; i < table->num_columns(); ++i) {
    const ColumnBase* column = table->column(i);
    if (dynamic_cast<const EncodedColumn*>(column) != nullptr) continue;
    NIPO_ASSIGN_OR_RETURN(std::unique_ptr<EncodedColumn> encoded,
                          EncodedColumn::Encode(*column, options));
    stats.plain_bytes += column->size() * column->value_width();
    stats.encoded_bytes += encoded->total_encoded_bytes();
    NIPO_RETURN_NOT_OK(table->ReplaceColumn(std::move(encoded)));
    ++stats.columns_encoded;
  }
  return stats;
}

}  // namespace nipo
