#pragma once

#include <cstdint>
#include <vector>

#include "common/compare.h"
#include "common/result.h"
#include "hw/pmu.h"
#include "storage/encoding.h"

/// \file column_view.h
/// The zero-copy scan API the executors iterate (DESIGN.md Section 10).
///
/// A ColumnView binds one column -- plain or encoded -- and hands the
/// block loops a ScanRun: a typed pointer plus addressing rule that the
/// SIMD kernels consume directly. For plain columns the run aliases the
/// column's own array (zero copy, and the PMU booking is byte-identical
/// to the historical raw-pointer path). For encoded columns the view
/// decodes the touched rows into caller-owned scratch, booking loads for
/// the *encoded* bytes actually read (codes at their code width, packed
/// words, the dictionary gather) plus the decode instructions of
/// StorageCostModel -- so compression shows up in the simulated L1/LLC
/// counters exactly as narrower data would.
///
/// Zone maps ride along: ZoneRefutesRange lets an executor prove a whole
/// block of rows dead against a predicate before any per-tuple work.

namespace nipo {

/// \brief A typed run of scannable values: element `j` lives at row
/// `base_row + (gather ? gather[j] : j)` of the array at `data`. This is
/// exactly the addressing contract of simd::CompareSelect, so a run's
/// fields feed the kernel without translation.
struct ScanRun {
  const uint8_t* data = nullptr;
  uint32_t width = 0;
  DataType type = DataType::kInt32;
  size_t base_row = 0;
  const uint32_t* gather = nullptr;
};

/// \brief Reads element `j` of a run as double (unbooked; reference
/// paths and scalar consumers).
inline double ScanRunValueAsDouble(const ScanRun& run, size_t j) {
  const size_t row = run.base_row + (run.gather ? run.gather[j] : j);
  const uint8_t* addr = run.data + static_cast<uint64_t>(row) * run.width;
  switch (run.type) {
    case DataType::kInt32:
      return static_cast<double>(*reinterpret_cast<const int32_t*>(addr));
    case DataType::kInt64:
      return static_cast<double>(*reinterpret_cast<const int64_t*>(addr));
    case DataType::kDouble:
      return *reinterpret_cast<const double*>(addr);
  }
  return 0.0;
}

/// \brief Reads element `j` of a run as int64 (unbooked).
inline int64_t ScanRunValueAsInt64(const ScanRun& run, size_t j) {
  const size_t row = run.base_row + (run.gather ? run.gather[j] : j);
  const uint8_t* addr = run.data + static_cast<uint64_t>(row) * run.width;
  switch (run.type) {
    case DataType::kInt32:
      return *reinterpret_cast<const int32_t*>(addr);
    case DataType::kInt64:
      return *reinterpret_cast<const int64_t*>(addr);
    case DataType::kDouble:
      return static_cast<int64_t>(*reinterpret_cast<const double*>(addr));
  }
  return 0;
}

/// \brief Caller-owned decode buffers, reused across blocks. One per
/// (executor, column-use) pair; single-threaded like the executors.
struct DecodeScratch {
  std::vector<uint8_t> values;
  std::vector<uint32_t> index_a;
  std::vector<uint32_t> index_b;
};

/// \brief A bound scan handle over one column, plain or encoded.
///
/// Default-constructed views are unbound placeholders; Bind() attaches a
/// column. Copyable (it holds non-owning pointers): executors keep one
/// per compiled operator and carry them through reorders.
class ColumnView {
 public:
  ColumnView() = default;

  /// Binds `column`, detecting encoded columns by type.
  static Result<ColumnView> Bind(const ColumnBase* column);

  bool bound() const { return column_ != nullptr; }
  DataType type() const { return type_; }
  size_t size() const { return size_; }
  uint32_t value_width() const { return width_; }
  bool encoded() const { return encoded_ != nullptr; }
  bool has_zone_maps() const {
    return encoded_ != nullptr && encoded_->num_blocks() > 0;
  }
  const std::string& name() const { return column_->name(); }

  /// Average encoded bytes a scan touches per value (== value_width()
  /// for plain columns) -- the cost model's replacement for the native
  /// width on compressed inputs.
  double scan_bytes_per_value() const {
    return encoded_ != nullptr ? encoded_->scan_bytes_per_value()
                               : static_cast<double>(width_);
  }

  /// Average per-value decode instructions (0 for plain columns).
  double decode_instructions_per_value() const {
    return encoded_ != nullptr ? encoded_->decode_instructions_per_value()
                               : 0.0;
  }

  /// True iff the zone maps prove no row of [row_begin, row_begin+count)
  /// can satisfy `op value`. A range straddling several storage blocks
  /// is refuted only if every overlapped block refutes. Always false for
  /// plain columns (no zone maps -- and so no behavior change).
  bool ZoneRefutesRange(size_t row_begin, size_t count, CompareOp op,
                        double value) const;

  /// Number of zone maps a ZoneRefutesRange over this range consults
  /// (0 for plain columns); the executor books the check instructions.
  size_t ZoneChecksForRange(size_t row_begin, size_t count) const;

  /// Fraction of rows living in blocks whose zone map refutes
  /// `op value` -- the optimizer's skip-potential signal. 0 for plain.
  double ZonePrunableFraction(CompareOp op, double value) const;

  /// Produces the run for elements j = 0..active-1 at rows
  /// `block_begin + (sel ? sel[j] : j)`, booking the loads on `pmu`.
  ///
  /// Plain columns return the underlying array directly (sequential-run
  /// booking while dense, gather booking under a selection -- exactly
  /// the historical raw path). Encoded columns decode the touched rows
  /// into `scratch` and return a dense run over it; the returned run
  /// then has gather == nullptr while row identity stays with the
  /// caller's `sel`.
  ScanRun ScanBlock(Pmu* pmu, size_t block_begin, const uint32_t* sel,
                    size_t active, DecodeScratch* scratch) const;

  /// Produces the run for elements j = 0..count-1 at absolute rows
  /// `rows[j]` (the FK-probe dimension gather), booking on `pmu`. Plain
  /// columns return {data, ..., base_row=0, gather=rows} -- the
  /// historical probe booking; encoded columns decode into `scratch`.
  ScanRun GatherRows(Pmu* pmu, const uint32_t* rows, size_t count,
                     DecodeScratch* scratch) const;

  /// Unbooked single-value access (reference computations, tests).
  double ValueAsDouble(size_t row) const;
  int64_t ValueAsInt64(size_t row) const;

 private:
  /// Decodes one dense piece of a storage block into scratch->values at
  /// element position out_begin, booking the encoded loads.
  void DecodeDensePiece(Pmu* pmu, const EncodedBlock& block,
                        size_t local_begin, size_t count,
                        DecodeScratch* scratch, size_t out_begin) const;

  /// Decodes block-relative rows `local_rows[0..count)` into
  /// scratch->values at element position out_begin, booking gathers.
  void DecodeGatherPiece(Pmu* pmu, const EncodedBlock& block,
                         const uint32_t* local_rows, size_t count,
                         DecodeScratch* scratch, size_t out_begin) const;

  static uint32_t DecodeCode(const EncodedBlock& block, size_t local_row);
  void CopyDictValues(const EncodedBlock& block, const uint32_t* codes,
                      size_t count, uint8_t* out) const;
  void UnpackValues(const EncodedBlock& block, size_t local_begin,
                    const uint32_t* local_rows, size_t count,
                    uint8_t* out) const;

  const ColumnBase* column_ = nullptr;
  const EncodedColumn* encoded_ = nullptr;  // null when plain
  const uint8_t* plain_data_ = nullptr;     // null when encoded
  uint32_t width_ = 0;
  DataType type_ = DataType::kInt32;
  size_t size_ = 0;
};

}  // namespace nipo
