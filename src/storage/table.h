#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/column.h"

/// \file table.h
/// A Table is a named collection of equal-length columns.

namespace nipo {

/// \brief Column metadata as seen by planners: name and type.
struct FieldSpec {
  std::string name;
  DataType type;
};

/// \brief Ordered list of fields describing a table's layout.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<FieldSpec> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const FieldSpec& field(size_t i) const { return fields_[i]; }
  const std::vector<FieldSpec>& fields() const { return fields_; }

  /// Index of the field named `name`, or NotFound.
  Result<size_t> FieldIndex(const std::string& name) const;

  std::string ToString() const;

 private:
  std::vector<FieldSpec> fields_;
};

/// \brief An in-memory columnar table. All columns have the same length.
class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  /// Adds a column. The first column fixes the row count; later columns
  /// must match it. Column names must be unique within the table.
  Status AddColumn(std::unique_ptr<ColumnBase> column);

  /// Convenience: builds and adds a typed column from a vector.
  template <typename T>
  Status AddColumn(std::string column_name, std::vector<T> values) {
    return AddColumn(std::make_unique<Column<T>>(std::move(column_name),
                                                 std::move(values)));
  }

  /// Column lookup by name; NotFound if absent.
  Result<const ColumnBase*> GetColumn(const std::string& column_name) const;

  /// Typed column lookup; NotFound / TypeMismatch on failure.
  template <typename T>
  Result<const Column<T>*> GetTypedColumn(const std::string& column_name) const {
    NIPO_ASSIGN_OR_RETURN(const ColumnBase* base, GetColumn(column_name));
    return AsColumn<T>(base);
  }

  /// Mutable column access for in-place transforms (shuffles, sorts).
  Result<ColumnBase*> GetMutableColumn(const std::string& column_name);

  /// Swaps in a replacement for the same-named existing column (used by
  /// EncodeTableColumns to install encoded forms in place). The
  /// replacement must match the existing column's name, row count, and
  /// type.
  Status ReplaceColumn(std::unique_ptr<ColumnBase> column);

  /// Column by position.
  const ColumnBase* column(size_t i) const { return columns_[i].get(); }

  /// Schema derived from the current columns.
  Schema schema() const;

 private:
  std::string name_;
  size_t num_rows_ = 0;
  std::vector<std::unique_ptr<ColumnBase>> columns_;
  std::map<std::string, size_t> index_;
};

}  // namespace nipo
