#pragma once

#include <cstdint>
#include <vector>

#include "cost/markov.h"

/// \file branch_model.h
/// Branch-event estimates for multi-selection queries (paper Section 3.2,
/// "For a multi-selection query, we extend our branch estimations to model
/// each predicate p1..pn ... we replace the number of input tuples by the
/// number of output tuples of the previous predicate").
///
/// Branch layout of the generated scan loop (Section 2.1/2.2.1):
///  - one conditional branch per predicate: NOT taken when the tuple
///    qualifies (fall through to the next predicate), taken when it fails
///    (jump to the loop end);
///  - one loop back-edge branch per tuple, (almost) always taken.
///
/// Consequently branches-taken per tuple is 1 for a fully qualifying tuple
/// and 2 for a failing one, giving the paper's qualifying-tuple identity
/// qualified = 2n - branches_taken, and branches-not-taken at predicate i
/// equals the number of tuples that qualified predicate i, i.e. the number
/// of accesses to the *next* column in the evaluation order.

namespace nipo {

/// \brief Expected branch-event counts (absolute, not fractions).
struct BranchEstimate {
  double branches = 0;  ///< conditional branches (predicates + back-edge)
  double branches_taken = 0;
  double branches_not_taken = 0;
  double taken_mp = 0;
  double not_taken_mp = 0;
  double mp = 0;

  BranchEstimate& operator+=(const BranchEstimate& other) {
    branches += other.branches;
    branches_taken += other.branches_taken;
    branches_not_taken += other.branches_not_taken;
    taken_mp += other.taken_mp;
    not_taken_mp += other.not_taken_mp;
    mp += other.mp;
    return *this;
  }
};

/// \brief Branch events for a single predicate evaluated on
/// `input_tuples` tuples with selectivity p.
BranchEstimate EstimatePredicateBranches(const PredictorConfig& config,
                                         double input_tuples, double p);

/// \brief Branch events for the whole scan loop: the predicate chain in
/// evaluation order plus the loop back-edge.
///
/// \param selectivities per-predicate selectivities in evaluation order;
///        predicate i sees input_tuples * prod_{j<i} selectivities[j].
/// \param include_loop_branch whether to add the (always-taken, perfectly
///        predicted in steady state) back-edge branch per tuple.
BranchEstimate EstimateScanBranches(const PredictorConfig& config,
                                    double input_tuples,
                                    const std::vector<double>& selectivities,
                                    bool include_loop_branch = true);

/// \brief The paper's qualifying-tuple identity: given the number of input
/// tuples and sampled branches-taken, returns the number of tuples that
/// satisfied all predicates (qualified = 2n - branches_taken).
double QualifyingTuplesFromBranchesTaken(double input_tuples,
                                         double branches_taken);

}  // namespace nipo
