#pragma once

#include <cstdint>
#include <vector>

#include "cost/markov.h"
#include "hw/pmu.h"

/// \file branch_model.h
/// Branch-event estimates for multi-selection queries (paper Section 3.2,
/// "For a multi-selection query, we extend our branch estimations to model
/// each predicate p1..pn ... we replace the number of input tuples by the
/// number of output tuples of the previous predicate").
///
/// Branch layout of the generated scan loop (Section 2.1/2.2.1):
///  - one conditional branch per predicate: NOT taken when the tuple
///    qualifies (fall through to the next predicate), taken when it fails
///    (jump to the loop end);
///  - one loop back-edge branch per tuple, (almost) always taken.
///
/// Consequently branches-taken per tuple is 1 for a fully qualifying tuple
/// and 2 for a failing one, giving the paper's qualifying-tuple identity
/// qualified = 2n - branches_taken, and branches-not-taken at predicate i
/// equals the number of tuples that qualified predicate i, i.e. the number
/// of accesses to the *next* column in the evaluation order.

namespace nipo {

/// \brief Expected branch-event counts (absolute, not fractions).
struct BranchEstimate {
  double branches = 0;  ///< conditional branches (predicates + back-edge)
  double branches_taken = 0;
  double branches_not_taken = 0;
  double taken_mp = 0;
  double not_taken_mp = 0;
  double mp = 0;

  BranchEstimate& operator+=(const BranchEstimate& other) {
    branches += other.branches;
    branches_taken += other.branches_taken;
    branches_not_taken += other.branches_not_taken;
    taken_mp += other.taken_mp;
    not_taken_mp += other.not_taken_mp;
    mp += other.mp;
    return *this;
  }
};

/// \brief Branch events for a single predicate evaluated on
/// `input_tuples` tuples with selectivity p.
BranchEstimate EstimatePredicateBranches(const PredictorConfig& config,
                                         double input_tuples, double p);

/// \brief Branch events for the whole scan loop: the predicate chain in
/// evaluation order plus the loop back-edge.
///
/// \param selectivities per-predicate selectivities in evaluation order;
///        predicate i sees input_tuples * prod_{j<i} selectivities[j].
/// \param include_loop_branch whether to add the (always-taken, perfectly
///        predicted in steady state) back-edge branch per tuple.
BranchEstimate EstimateScanBranches(const PredictorConfig& config,
                                    double input_tuples,
                                    const std::vector<double>& selectivities,
                                    bool include_loop_branch = true);

/// \brief Forms-aware overload: positions with `branch_free[i]` true are
/// simulated as compare-to-mask kernels and contribute *no* branch events
/// (they still narrow the tuple stream for downstream predicates). An
/// empty `branch_free` means all-branching. This is what keeps the
/// counter predictions consistent with the executor once the progressive
/// optimizer switches predicates to their branch-free form.
BranchEstimate EstimateScanBranches(const PredictorConfig& config,
                                    double input_tuples,
                                    const std::vector<double>& selectivities,
                                    const std::vector<bool>& branch_free,
                                    bool include_loop_branch);

/// \brief The paper's qualifying-tuple identity: given the number of input
/// tuples and sampled branches-taken, returns the number of tuples that
/// satisfied all predicates (qualified = 2n - branches_taken).
///
/// Only valid for all-branching chains: a branch-free predicate's failing
/// tuples produce no taken branch, so executions with branch-free forms
/// must take the qualifying count from the executor's result instead
/// (the progressive driver always does).
double QualifyingTuplesFromBranchesTaken(double input_tuples,
                                         double branches_taken);

// ---------------------------------------------------------------------------
// SIMD-aware predicate pricing (DESIGN.md Section 8)
// ---------------------------------------------------------------------------

/// \brief Simulated cycles per evaluated tuple of the two predicate forms.
struct PredicateFormCosts {
  double branching = 0;    ///< compare + branch + expected mp penalty
  double branch_free = 0;  ///< flat mask-kernel instructions, no branches
  bool branch_free_cheaper() const { return branch_free < branching; }
  double cheapest() const {
    return branch_free < branching ? branch_free : branching;
  }
};

/// \brief Prices one predicate of selectivity `selectivity` in simulated
/// cycles per evaluated tuple, exactly as Pmu::Read() charges the
/// executor's booking: the branching form pays the compare (+ extra)
/// instructions at CPI, one predicted-branch cycle, and the Markov-chain
/// misprediction probability times the flush penalty; the branch-free
/// form pays only its (higher) instruction count at CPI. Instruction
/// counts are parameters so the cost layer stays independent of the
/// executor's LoopCostModel constants (tests pin them to each other).
PredicateFormCosts PricePredicateForms(const CycleModel& cycles,
                                       const PredictorConfig& predictor,
                                       double selectivity,
                                       double compare_instructions,
                                       double branch_free_instructions,
                                       double extra_instructions);

/// \brief The lowest selectivity in [0, 0.5] at which the branch-free
/// form becomes the cheaper one (the forms tie where the misprediction
/// probability reaches ((branch_free - compare) * cpi - branch_cycles) /
/// penalty). Returns 0.0 if branch-free is cheaper everywhere and 1.0 if
/// branching is cheaper on all of [0, 0.5] (by the predictor's symmetry
/// in s <-> 1-s, everywhere). Found by bisection on the Markov
/// misprediction curve, so it is exact for the priced model -- the unit
/// tests check it against a brute-force sweep of the simulated machine.
double ComputeFormCrossover(const CycleModel& cycles,
                            const PredictorConfig& predictor,
                            double compare_instructions,
                            double branch_free_instructions,
                            double extra_instructions);

}  // namespace nipo
