#include "cost/cache_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

/// \file cache_model.cc
/// Scan cache-traffic estimates: plain sequential reads for the first
/// column of an order, conditional-read patterns with density equal to the
/// product of the preceding selectivities for every later column.

namespace nipo {

ColumnCacheEstimate EstimateColumnCache(const ScanCacheModelConfig& config,
                                        double num_tuples,
                                        const ScanColumnSpec& column) {
  NIPO_CHECK(column.value_width > 0);
  NIPO_CHECK(config.line_size >= column.value_width);
  NIPO_CHECK(column.packed_bytes_per_value >= 0.0);
  ColumnCacheEstimate out;
  // Encoded columns stream their packed representation past the caches, so
  // the line density is set by the encoded width, not the decoded one.
  const double scan_bytes = column.packed_bytes_per_value > 0.0
                                ? column.packed_bytes_per_value
                                : static_cast<double>(column.value_width);
  const double values_per_line =
      static_cast<double>(config.line_size) / scan_bytes;
  out.lines_total = num_tuples / values_per_line;
  const double rho = std::clamp(column.access_fraction, 0.0, 1.0);
  // Probability that a line contains at least one accessed value.
  const double p_untouched = std::pow(1.0 - rho, values_per_line);
  const double p_accessed = 1.0 - p_untouched;
  out.lines_accessed = out.lines_total * p_accessed;
  // A line is a "random miss" when it is accessed but its predecessor line
  // was skipped, so the next-line prefetch fired for nothing and the line
  // itself needs a fresh demand fetch.
  out.random_lines = out.lines_total * p_accessed * p_untouched;
  if (config.double_count_random_misses) {
    out.l3_accesses = out.lines_accessed + out.random_lines;
  } else {
    out.l3_accesses = out.lines_accessed;
  }
  return out;
}

double EstimateScanL3Accesses(const ScanCacheModelConfig& config,
                              double num_tuples,
                              const std::vector<ScanColumnSpec>& columns) {
  double total = 0.0;
  for (const ScanColumnSpec& column : columns) {
    total += EstimateColumnCache(config, num_tuples, column).l3_accesses;
  }
  return total;
}

std::vector<ScanColumnSpec> BuildScanColumns(
    const std::vector<double>& selectivities,
    const std::vector<uint32_t>& predicate_widths,
    const std::vector<uint32_t>& payload_widths) {
  return BuildScanColumns(selectivities, predicate_widths, payload_widths, {},
                          {});
}

std::vector<ScanColumnSpec> BuildScanColumns(
    const std::vector<double>& selectivities,
    const std::vector<uint32_t>& predicate_widths,
    const std::vector<uint32_t>& payload_widths,
    const std::vector<double>& predicate_packed_bytes,
    const std::vector<double>& payload_packed_bytes) {
  NIPO_CHECK(selectivities.size() == predicate_widths.size());
  NIPO_CHECK(predicate_packed_bytes.empty() ||
             predicate_packed_bytes.size() == predicate_widths.size());
  NIPO_CHECK(payload_packed_bytes.empty() ||
             payload_packed_bytes.size() == payload_widths.size());
  std::vector<ScanColumnSpec> columns;
  columns.reserve(selectivities.size() + payload_widths.size());
  double rho = 1.0;
  for (size_t i = 0; i < selectivities.size(); ++i) {
    ScanColumnSpec spec{predicate_widths[i], rho};
    if (!predicate_packed_bytes.empty()) {
      spec.packed_bytes_per_value = predicate_packed_bytes[i];
    }
    columns.push_back(spec);
    rho *= std::clamp(selectivities[i], 0.0, 1.0);
  }
  for (size_t i = 0; i < payload_widths.size(); ++i) {
    ScanColumnSpec spec{payload_widths[i], rho};
    if (!payload_packed_bytes.empty()) {
      spec.packed_bytes_per_value = payload_packed_bytes[i];
    }
    columns.push_back(spec);
  }
  return columns;
}

ScanFootprintEstimate EstimateScanFootprint(uint64_t streamed_bytes,
                                            uint64_t reuse_bytes,
                                            uint64_t l3_capacity_bytes) {
  ScanFootprintEstimate estimate;
  estimate.streamed_bytes = streamed_bytes;
  estimate.reuse_bytes = reuse_bytes;
  const uint64_t total = streamed_bytes + reuse_bytes;
  estimate.footprint_bytes =
      l3_capacity_bytes > 0 ? std::min(total, l3_capacity_bytes) : total;
  return estimate;
}

}  // namespace nipo
