#include "cost/cache_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

/// \file cache_model.cc
/// Scan cache-traffic estimates: plain sequential reads for the first
/// column of an order, conditional-read patterns with density equal to the
/// product of the preceding selectivities for every later column.

namespace nipo {

ColumnCacheEstimate EstimateColumnCache(const ScanCacheModelConfig& config,
                                        double num_tuples,
                                        const ScanColumnSpec& column) {
  NIPO_CHECK(column.value_width > 0);
  NIPO_CHECK(config.line_size >= column.value_width);
  ColumnCacheEstimate out;
  const double values_per_line =
      static_cast<double>(config.line_size) / column.value_width;
  out.lines_total = num_tuples / values_per_line;
  const double rho = std::clamp(column.access_fraction, 0.0, 1.0);
  // Probability that a line contains at least one accessed value.
  const double p_untouched = std::pow(1.0 - rho, values_per_line);
  const double p_accessed = 1.0 - p_untouched;
  out.lines_accessed = out.lines_total * p_accessed;
  // A line is a "random miss" when it is accessed but its predecessor line
  // was skipped, so the next-line prefetch fired for nothing and the line
  // itself needs a fresh demand fetch.
  out.random_lines = out.lines_total * p_accessed * p_untouched;
  if (config.double_count_random_misses) {
    out.l3_accesses = out.lines_accessed + out.random_lines;
  } else {
    out.l3_accesses = out.lines_accessed;
  }
  return out;
}

double EstimateScanL3Accesses(const ScanCacheModelConfig& config,
                              double num_tuples,
                              const std::vector<ScanColumnSpec>& columns) {
  double total = 0.0;
  for (const ScanColumnSpec& column : columns) {
    total += EstimateColumnCache(config, num_tuples, column).l3_accesses;
  }
  return total;
}

std::vector<ScanColumnSpec> BuildScanColumns(
    const std::vector<double>& selectivities,
    const std::vector<uint32_t>& predicate_widths,
    const std::vector<uint32_t>& payload_widths) {
  NIPO_CHECK(selectivities.size() == predicate_widths.size());
  std::vector<ScanColumnSpec> columns;
  columns.reserve(selectivities.size() + payload_widths.size());
  double rho = 1.0;
  for (size_t i = 0; i < selectivities.size(); ++i) {
    columns.push_back(ScanColumnSpec{predicate_widths[i], rho});
    rho *= std::clamp(selectivities[i], 0.0, 1.0);
  }
  for (uint32_t width : payload_widths) {
    columns.push_back(ScanColumnSpec{width, rho});
  }
  return columns;
}

ScanFootprintEstimate EstimateScanFootprint(uint64_t streamed_bytes,
                                            uint64_t reuse_bytes,
                                            uint64_t l3_capacity_bytes) {
  ScanFootprintEstimate estimate;
  estimate.streamed_bytes = streamed_bytes;
  estimate.reuse_bytes = reuse_bytes;
  const uint64_t total = streamed_bytes + reuse_bytes;
  estimate.footprint_bytes =
      l3_capacity_bytes > 0 ? std::min(total, l3_capacity_bytes) : total;
  return estimate;
}

}  // namespace nipo
