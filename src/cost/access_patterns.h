#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/cache.h"

/// \file access_patterns.h
/// The generic cost model of Manegold, Boncz and Kersten (VLDB 2002),
/// which the paper's Section 3.1 builds on: complex database operators
/// are described as compositions of a small set of *atomic* data access
/// patterns, and the expected number of sequential and random cache
/// misses per hierarchy level falls out of the composition rules.
///
/// Atomic patterns over a region of U data items of width w:
///  - s_trav: single sequential traversal (scan),
///  - s_trav_cond: sequential traversal with conditional reads (the
///    paper's "sequential scan with conditional read", density rho),
///  - r_trav: traversal in random order touching every item once,
///  - rr_acc: r repeated random accesses (hash probes, FK lookups).
///
/// Composition:
///  - Sequential(p1, p2): p1 then p2 (cache state shared, worst-case
///    independent -> misses add),
///  - Interleaved(p1, p2): accesses interleave (e.g. scan + probe in one
///    loop); both compete for capacity, modeled by splitting the
///    effective capacity proportionally to each pattern's footprint.
///
/// Only the L3-level miss estimates feed the progressive optimizer (the
/// paper samples L3 events), but the model is evaluated per level.

namespace nipo {

/// \brief Expected misses of a pattern at one cache level.
struct PatternCost {
  double sequential_misses = 0;
  double random_misses = 0;
  double total() const { return sequential_misses + random_misses; }
};

/// \brief An abstract access pattern evaluated against a cache geometry
/// with an effective capacity (composition may shrink it).
class AccessPattern {
 public:
  virtual ~AccessPattern() = default;

  /// Expected misses at a level with `effective_capacity_lines` lines of
  /// `geometry.line_size` bytes available to this pattern.
  virtual PatternCost Misses(const CacheGeometry& geometry,
                             double effective_capacity_lines) const = 0;

  /// Bytes the pattern keeps "live" (its footprint for capacity splits).
  virtual double FootprintBytes() const = 0;

  virtual std::string ToString() const = 0;
};

/// \brief s_trav: sequential traversal of `count` items of `width` bytes.
class SequentialTraversal : public AccessPattern {
 public:
  SequentialTraversal(double count, double width)
      : count_(count), width_(width) {}
  PatternCost Misses(const CacheGeometry& geometry,
                     double effective_capacity_lines) const override;
  double FootprintBytes() const override;
  std::string ToString() const override;

 private:
  double count_, width_;
};

/// \brief s_trav_cond: sequential traversal touching each item with
/// probability `density`; random misses are double counted per the
/// paper's refinement (wasted prefetch + demand fetch).
class ConditionalTraversal : public AccessPattern {
 public:
  ConditionalTraversal(double count, double width, double density)
      : count_(count), width_(width), density_(density) {}
  PatternCost Misses(const CacheGeometry& geometry,
                     double effective_capacity_lines) const override;
  double FootprintBytes() const override;
  std::string ToString() const override;

 private:
  double count_, width_, density_;
};

/// \brief rr_acc: `accesses` uniform random accesses into a region of
/// `count` items of `width` bytes (Equation 1 of the paper).
class RepeatedRandomAccess : public AccessPattern {
 public:
  RepeatedRandomAccess(double count, double width, double accesses)
      : count_(count), width_(width), accesses_(accesses) {}
  PatternCost Misses(const CacheGeometry& geometry,
                     double effective_capacity_lines) const override;
  double FootprintBytes() const override;
  std::string ToString() const override;

 private:
  double count_, width_, accesses_;
};

/// \brief r_trav: every item touched exactly once in random order.
class RandomTraversal : public AccessPattern {
 public:
  RandomTraversal(double count, double width)
      : count_(count), width_(width) {}
  PatternCost Misses(const CacheGeometry& geometry,
                     double effective_capacity_lines) const override;
  double FootprintBytes() const override;
  std::string ToString() const override;

 private:
  double count_, width_;
};

/// \brief Sequential composition: patterns run one after another; misses
/// add (worst-case no reuse across phases, the Manegold "+" rule).
class SequentialComposition : public AccessPattern {
 public:
  explicit SequentialComposition(
      std::vector<std::shared_ptr<AccessPattern>> children)
      : children_(std::move(children)) {}
  PatternCost Misses(const CacheGeometry& geometry,
                     double effective_capacity_lines) const override;
  double FootprintBytes() const override;
  std::string ToString() const override;

 private:
  std::vector<std::shared_ptr<AccessPattern>> children_;
};

/// \brief Interleaved composition: patterns compete for the cache; each
/// child sees the capacity split proportionally to its footprint (the
/// Manegold concurrent-execution rule).
class InterleavedComposition : public AccessPattern {
 public:
  explicit InterleavedComposition(
      std::vector<std::shared_ptr<AccessPattern>> children)
      : children_(std::move(children)) {}
  PatternCost Misses(const CacheGeometry& geometry,
                     double effective_capacity_lines) const override;
  double FootprintBytes() const override;
  std::string ToString() const override;

 private:
  std::vector<std::shared_ptr<AccessPattern>> children_;
};

/// \name Convenience builders.
/// @{
std::shared_ptr<AccessPattern> STrav(double count, double width);
std::shared_ptr<AccessPattern> STravCond(double count, double width,
                                         double density);
std::shared_ptr<AccessPattern> RTrav(double count, double width);
std::shared_ptr<AccessPattern> RRAcc(double count, double width,
                                     double accesses);
std::shared_ptr<AccessPattern> Seq(
    std::vector<std::shared_ptr<AccessPattern>> children);
std::shared_ptr<AccessPattern> Inter(
    std::vector<std::shared_ptr<AccessPattern>> children);
/// @}

/// \brief Evaluates a pattern against a full hierarchy: misses per level
/// and the total simulated memory cycles under `model`-style latencies.
struct HierarchyCost {
  PatternCost l1;
  PatternCost l2;
  PatternCost l3;
};
HierarchyCost EvaluatePattern(const AccessPattern& pattern,
                              const CacheGeometry& l1,
                              const CacheGeometry& l2,
                              const CacheGeometry& l3);

}  // namespace nipo
