#pragma once

#include <cstdint>
#include <vector>

/// \file cache_model.h
/// Analytic cache-access model for scans (paper Section 3.1).
///
/// The model extends Pirk et al.'s generic scan model: the first column of
/// a predicate evaluation order is read with a plain sequential pattern,
/// every later column with a *sequential scan with conditional read*
/// pattern whose access density is the product of the preceding
/// selectivities. The paper's refinement -- which this module implements
/// and bench/ablation_cache_model quantifies -- is to count random misses
/// twice: a cache line reached by a non-sequential step costs both the
/// wasted next-line prefetch issued after the previous access and the
/// demand fetch of the actually used line.

namespace nipo {

/// \brief Description of one column touched by the scan.
struct ScanColumnSpec {
  uint32_t value_width = 4;  ///< bytes per value
  /// Fraction of tuples whose value is loaded: 1.0 for the first predicate
  /// column, the product of preceding selectivities for later columns.
  double access_fraction = 1.0;
  /// Encoded bytes a scan actually touches per value (dictionary codes or
  /// bit-packed words; see src/storage/encoding.h). Fractional for packed
  /// widths below a byte. Zero means the column is stored plain and
  /// `value_width` bytes stream past the caches per value.
  double packed_bytes_per_value = 0.0;
};

/// \brief Per-column cache estimate.
struct ColumnCacheEstimate {
  double lines_total = 0;     ///< lines spanned by the column
  double lines_accessed = 0;  ///< expected lines with >= 1 touched value
  double random_lines = 0;    ///< accessed lines whose predecessor was not
  double l3_accesses = 0;     ///< per the (optionally doubled) model
};

/// \brief Scan cache model configuration.
struct ScanCacheModelConfig {
  uint32_t line_size = 64;
  /// Paper's modification: random misses count twice (wasted prefetch +
  /// demand fetch). Disable to get the original Pirk et al. behaviour.
  bool double_count_random_misses = true;
};

/// \brief Expected cache behaviour of one column scanned over `num_tuples`
/// tuples with the given access density.
///
/// A line holds t = line_size / value_width values; under the model's
/// independence assumption a line is touched with probability
/// 1 - (1-rho)^t and is a "random" (non-sequentially reached) line with
/// probability (1 - (1-rho)^t) * (1-rho)^t.
ColumnCacheEstimate EstimateColumnCache(const ScanCacheModelConfig& config,
                                        double num_tuples,
                                        const ScanColumnSpec& column);

/// \brief Total expected L3 accesses of a scan over all its columns.
double EstimateScanL3Accesses(const ScanCacheModelConfig& config,
                              double num_tuples,
                              const std::vector<ScanColumnSpec>& columns);

/// \brief Convenience: builds the ScanColumnSpec chain for a predicate
/// evaluation order with the given per-predicate selectivities and value
/// widths, appending `extra_payload_widths` columns that are accessed only
/// by fully qualifying tuples (aggregate inputs).
std::vector<ScanColumnSpec> BuildScanColumns(
    const std::vector<double>& selectivities,
    const std::vector<uint32_t>& predicate_widths,
    const std::vector<uint32_t>& payload_widths);

/// \brief As above, with per-column encoded scan widths. Empty vectors (or
/// zero entries) mean plain storage; otherwise `predicate_packed_bytes`
/// must align with `predicate_widths` and `payload_packed_bytes` with
/// `payload_widths`.
std::vector<ScanColumnSpec> BuildScanColumns(
    const std::vector<double>& selectivities,
    const std::vector<uint32_t>& predicate_widths,
    const std::vector<uint32_t>& payload_widths,
    const std::vector<double>& predicate_packed_bytes,
    const std::vector<double>& payload_packed_bytes);

/// \brief Estimated shared-L3 working set of one query (the admission
/// input of footprint-aware co-scheduling; DESIGN.md Section 6).
struct ScanFootprintEstimate {
  uint64_t streamed_bytes = 0;  ///< sequentially-scanned bytes (fact columns)
  uint64_t reuse_bytes = 0;     ///< re-referenced bytes (dimension tables)
  uint64_t footprint_bytes = 0;  ///< the capacity claim (capped at L3 size)
};

/// \brief Combines streamed and reused bytes into a shared-L3 capacity
/// claim. Reused bytes count fully — the query wants them resident for
/// its whole run. Streamed bytes count too, because every streamed line
/// passes through L3 and displaces a resident line on its way (the
/// pollution a scan inflicts on co-runners), but the claim is capped at
/// `l3_capacity_bytes`: a scan larger than the cache cannot displace
/// more than the whole cache, and the cap is what lets such a query be
/// admitted at all (a "thrasher" claims the full L3, so footprint-aware
/// scheduling runs it against streams, never against reuse queries).
/// A zero capacity leaves the claim uncapped.
ScanFootprintEstimate EstimateScanFootprint(uint64_t streamed_bytes,
                                            uint64_t reuse_bytes,
                                            uint64_t l3_capacity_bytes);

}  // namespace nipo
