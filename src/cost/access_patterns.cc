#include "cost/access_patterns.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "cost/join_model.h"

/// \file access_patterns.cc
/// Evaluation of the atomic Manegold-style access patterns: per-level
/// footprints in cache lines, sequential/random miss counts, and the
/// composition rules used by the scan and join cost models.

namespace nipo {

namespace {

double LinesOf(double count, double width, const CacheGeometry& geometry) {
  return std::max(0.0,
                  count * width / static_cast<double>(geometry.line_size));
}

}  // namespace

// --- SequentialTraversal ---

PatternCost SequentialTraversal::Misses(const CacheGeometry& geometry,
                                        double) const {
  PatternCost cost;
  // A cold sequential pass misses once per line regardless of capacity;
  // the very first line is the pattern's single random step.
  const double lines = LinesOf(count_, width_, geometry);
  if (lines <= 0) return cost;
  cost.random_misses = std::min(1.0, lines);
  cost.sequential_misses = std::max(0.0, lines - 1.0);
  return cost;
}

double SequentialTraversal::FootprintBytes() const {
  // A stream keeps only a handful of lines live; footprint ~ one line's
  // worth per direction. Use 2 lines of 64 as a nominal constant.
  return 128.0;
}

std::string SequentialTraversal::ToString() const {
  return "s_trav(" + std::to_string(count_) + "x" + std::to_string(width_) +
         ")";
}

// --- ConditionalTraversal ---

PatternCost ConditionalTraversal::Misses(const CacheGeometry& geometry,
                                         double) const {
  PatternCost cost;
  const double values_per_line =
      static_cast<double>(geometry.line_size) / std::max(1.0, width_);
  const double lines = LinesOf(count_, width_, geometry);
  if (lines <= 0) return cost;
  const double rho = std::clamp(density_, 0.0, 1.0);
  const double p_untouched = std::pow(1.0 - rho, values_per_line);
  const double p_accessed = 1.0 - p_untouched;
  const double accessed = lines * p_accessed;
  // Lines reached after a skipped predecessor are random misses and are
  // double counted (wasted prefetch + demand fetch, the paper's Section
  // 3.1 refinement); runs of adjacent lines stream sequentially.
  const double random = lines * p_accessed * p_untouched;
  cost.random_misses = 2.0 * random;
  cost.sequential_misses = std::max(0.0, accessed - random);
  return cost;
}

double ConditionalTraversal::FootprintBytes() const { return 128.0; }

std::string ConditionalTraversal::ToString() const {
  return "s_trav_cond(" + std::to_string(count_) + "x" +
         std::to_string(width_) + ", rho=" + std::to_string(density_) + ")";
}

// --- RepeatedRandomAccess ---

PatternCost RepeatedRandomAccess::Misses(
    const CacheGeometry& geometry, double effective_capacity_lines) const {
  PatternCost cost;
  if (accesses_ <= 0) return cost;
  const double region_lines = std::max(1.0, LinesOf(count_, width_, geometry));
  const double distinct = ExpectedDistinctLines(region_lines, accesses_);
  if (distinct < effective_capacity_lines) {
    // Region (or at least its touched part) stays resident: each distinct
    // line misses exactly once (Equation 1, first case).
    cost.random_misses = distinct;
  } else {
    // Thrashing: a probe hits only if it lands on a resident line.
    const double resident_fraction =
        std::min(1.0, effective_capacity_lines / region_lines);
    cost.random_misses = accesses_ * (1.0 - resident_fraction);
  }
  return cost;
}

double RepeatedRandomAccess::FootprintBytes() const {
  return count_ * width_;
}

std::string RepeatedRandomAccess::ToString() const {
  return "rr_acc(" + std::to_string(count_) + "x" + std::to_string(width_) +
         ", r=" + std::to_string(accesses_) + ")";
}

// --- RandomTraversal ---

PatternCost RandomTraversal::Misses(const CacheGeometry& geometry,
                                    double effective_capacity_lines) const {
  PatternCost cost;
  const double lines = LinesOf(count_, width_, geometry);
  if (lines <= 0) return cost;
  const double values_per_line =
      static_cast<double>(geometry.line_size) / std::max(1.0, width_);
  if (lines <= effective_capacity_lines) {
    // Fits: each line missed once, in random order.
    cost.random_misses = lines;
  } else {
    // Every item access misses unless its line happens to be resident.
    const double resident_fraction =
        std::min(1.0, effective_capacity_lines / lines);
    cost.random_misses =
        lines * values_per_line * (1.0 - resident_fraction);
  }
  return cost;
}

double RandomTraversal::FootprintBytes() const { return count_ * width_; }

std::string RandomTraversal::ToString() const {
  return "r_trav(" + std::to_string(count_) + "x" + std::to_string(width_) +
         ")";
}

// --- SequentialComposition ---

PatternCost SequentialComposition::Misses(
    const CacheGeometry& geometry, double effective_capacity_lines) const {
  PatternCost cost;
  for (const auto& child : children_) {
    const PatternCost c = child->Misses(geometry, effective_capacity_lines);
    cost.sequential_misses += c.sequential_misses;
    cost.random_misses += c.random_misses;
  }
  return cost;
}

double SequentialComposition::FootprintBytes() const {
  double footprint = 0;
  for (const auto& child : children_) {
    footprint = std::max(footprint, child->FootprintBytes());
  }
  return footprint;
}

std::string SequentialComposition::ToString() const {
  std::string out = "seq(";
  for (size_t i = 0; i < children_.size(); ++i) {
    if (i) out += "; ";
    out += children_[i]->ToString();
  }
  return out + ")";
}

// --- InterleavedComposition ---

PatternCost InterleavedComposition::Misses(
    const CacheGeometry& geometry, double effective_capacity_lines) const {
  PatternCost cost;
  double total_footprint = 0;
  for (const auto& child : children_) {
    total_footprint += child->FootprintBytes();
  }
  for (const auto& child : children_) {
    const double share =
        total_footprint > 0
            ? child->FootprintBytes() / total_footprint
            : 1.0 / static_cast<double>(std::max<size_t>(1,
                                                         children_.size()));
    const PatternCost c =
        child->Misses(geometry, effective_capacity_lines * share);
    cost.sequential_misses += c.sequential_misses;
    cost.random_misses += c.random_misses;
  }
  return cost;
}

double InterleavedComposition::FootprintBytes() const {
  double footprint = 0;
  for (const auto& child : children_) {
    footprint += child->FootprintBytes();
  }
  return footprint;
}

std::string InterleavedComposition::ToString() const {
  std::string out = "inter(";
  for (size_t i = 0; i < children_.size(); ++i) {
    if (i) out += " || ";
    out += children_[i]->ToString();
  }
  return out + ")";
}

// --- builders ---

std::shared_ptr<AccessPattern> STrav(double count, double width) {
  return std::make_shared<SequentialTraversal>(count, width);
}
std::shared_ptr<AccessPattern> STravCond(double count, double width,
                                         double density) {
  return std::make_shared<ConditionalTraversal>(count, width, density);
}
std::shared_ptr<AccessPattern> RTrav(double count, double width) {
  return std::make_shared<RandomTraversal>(count, width);
}
std::shared_ptr<AccessPattern> RRAcc(double count, double width,
                                     double accesses) {
  return std::make_shared<RepeatedRandomAccess>(count, width, accesses);
}
std::shared_ptr<AccessPattern> Seq(
    std::vector<std::shared_ptr<AccessPattern>> children) {
  return std::make_shared<SequentialComposition>(std::move(children));
}
std::shared_ptr<AccessPattern> Inter(
    std::vector<std::shared_ptr<AccessPattern>> children) {
  return std::make_shared<InterleavedComposition>(std::move(children));
}

HierarchyCost EvaluatePattern(const AccessPattern& pattern,
                              const CacheGeometry& l1,
                              const CacheGeometry& l2,
                              const CacheGeometry& l3) {
  HierarchyCost cost;
  cost.l1 = pattern.Misses(l1, static_cast<double>(l1.num_lines()));
  cost.l2 = pattern.Misses(l2, static_cast<double>(l2.num_lines()));
  cost.l3 = pattern.Misses(l3, static_cast<double>(l3.num_lines()));
  return cost;
}

}  // namespace nipo
