#pragma once

#include <cstdint>
#include <vector>

#include "cost/branch_model.h"
#include "cost/cache_model.h"

/// \file counter_model.h
/// Combined prediction of the four performance counters the paper's
/// learning algorithm exploits (Section 4.2): branches not taken,
/// mispredicted-taken branches, mispredicted-not-taken branches, and L3
/// accesses. Given a candidate vector of per-predicate selectivities this
/// produces the counter values the PMU would report, which the
/// selectivity estimator compares against the sampled values
/// (minimization function, Equation 10).

namespace nipo {

/// \brief Static description of the scanned query shape (independent of
/// the candidate selectivities).
struct ScanShape {
  double num_tuples = 0;
  /// Value width in bytes of each predicate column, in evaluation order.
  std::vector<uint32_t> predicate_widths;
  /// Columns read only by fully qualifying tuples (aggregate inputs).
  std::vector<uint32_t> payload_widths;
  /// Encoded bytes a scan touches per value (0 / empty = plain storage);
  /// aligned with predicate_widths / payload_widths when non-empty. Keeps
  /// the cache-access prediction honest over compressed columns.
  std::vector<double> predicate_packed_bytes;
  std::vector<double> payload_packed_bytes;
  ScanCacheModelConfig cache;
  PredictorConfig predictor;
  bool include_loop_branch = true;
  /// Per-predicate simulated form, in evaluation order: true positions
  /// run branch-free (compare-to-mask, no branch events). Empty means
  /// all-branching. Filled from the executor's current forms so counter
  /// predictions track what the scan actually books.
  std::vector<bool> branch_free;
};

/// \brief The four sampled/predicted counters of Equation 10.
struct CounterEstimate {
  double branches_not_taken = 0;
  double taken_mp = 0;
  double not_taken_mp = 0;
  double l3_accesses = 0;
};

/// \brief Predicts all four counters for `selectivities` (one per
/// predicate, in evaluation order) over the given shape.
CounterEstimate PredictCounters(const ScanShape& shape,
                                const std::vector<double>& selectivities);

/// \brief Relative distance between a sampled counter vector and a
/// prediction: sum over the four counters of |sampled - predicted| /
/// max(sampled, 1). This is the implemented form of the paper's
/// minimization function (Equation 10); the paper prints a sum of signed
/// differences, which cannot serve as a minimization objective -- the
/// absolute/relative form is the evident intent (differences of zero in
/// every counter minimize it).
double CounterDistance(const CounterEstimate& sampled,
                       const CounterEstimate& predicted);

}  // namespace nipo
