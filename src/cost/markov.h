#pragma once

#include <vector>

#include "hw/branch_predictor.h"

/// \file markov.h
/// Analytic model of the saturating-counter branch predictor (paper
/// Section 3.2, Figure 5, Equations 4a-4g and 5a-5f).
///
/// The predictor is a birth-death Markov chain over N states: with
/// probability p (the selectivity; a qualifying tuple means the branch is
/// NOT taken) the state moves one step toward the "strongly not taken"
/// end, with probability 1-p one step toward "strongly taken", saturating
/// at the ends. Solving for the stationary distribution gives the
/// long-run probability that the predictor currently predicts taken or
/// not-taken, from which the misprediction rates follow:
///
///   BTakMP    = (1-p) * BNotTak   (taken branch, predicted not-taken)
///   BTakRP    = (1-p) * BTak
///   BNotTakMP =  p    * BTak      (not-taken branch, predicted taken)
///   BNotTakRP =  p    * BNotTak
///   BMP       = BTakMP + BNotTakMP
///
/// (The paper's Equation 5e prints BMP = BTakMP + BNotTakRP; that is a
/// typo -- the sum of the two misprediction classes is the total, as
/// Figures 3 and 6 confirm. We implement the corrected form.)

namespace nipo {

/// \brief Stationary distribution of the N-state chain at selectivity p.
///
/// For a birth-death chain with constant step probabilities the stationary
/// mass satisfies pi[i+1]/pi[i] = (1-p)/p, i.e. pi[i] ~ r^i with
/// r = (1-p)/p, normalized. p = 0 and p = 1 degenerate to point masses at
/// the taken / not-taken end respectively.
std::vector<double> MarkovStationaryDistribution(const PredictorConfig& config,
                                                 double p);

/// \brief Same distribution obtained by power iteration on the explicit
/// transition matrix. Slower; used to cross-check the closed form in tests
/// and available for exotic chain variants.
std::vector<double> MarkovStationaryByIteration(const PredictorConfig& config,
                                                double p,
                                                int iterations = 20000);

/// \brief Per-branch prediction/misprediction probabilities at
/// selectivity p, all as fractions of executed branches.
struct BranchProbabilities {
  double predict_taken = 0;      ///< BTak: predictor currently says taken
  double predict_not_taken = 0;  ///< BNotTak
  double taken_mp = 0;           ///< BTakMP
  double taken_rp = 0;           ///< BTakRP
  double not_taken_mp = 0;       ///< BNotTakMP
  double not_taken_rp = 0;       ///< BNotTakRP
  double mp = 0;                 ///< BMP = taken_mp + not_taken_mp
  double rp = 0;                 ///< BRP
};

/// \brief Evaluates Equations 5a-5f for the given predictor at
/// selectivity p.
BranchProbabilities ComputeBranchProbabilities(const PredictorConfig& config,
                                               double p);

/// \brief The coarse baseline of Zeuch et al. [23] (paper Equation 3):
/// misprediction fraction = min(p, 1-p). Used as the comparison line in
/// Figure 6.
double ZeuchMispredictionFraction(double p);

}  // namespace nipo
