#pragma once

#include <cstdint>

#include "hw/cache.h"

/// \file join_model.h
/// Cache-miss model for equi-joins (paper Section 3.1, Equations 1-2).
///
/// The paper replaces Manegold et al.'s random-miss equation with one
/// grounded in the external-memory model: for r probe accesses into a
/// relation of R.n tuples of width R.w, the expected number of *random*
/// cache misses at a level with capacity #_i lines of B_i bytes is
///
///   Mr_i = C_i                                if C_i < #_i   (fits: each
///                                             accessed line missed once)
///   Mr_i = r * (1 - (#_i * B_i)/(R.n * R.w))  otherwise      (thrashes:
///                                             each probe misses unless it
///                                             lands on a resident line)
///
/// where C_i is the expected number of distinct lines touched by r
/// uniform accesses (Equation 2, the classic distinct-value bound).
///
/// The progressive optimizer uses this model for sortedness detection
/// (Sections 5.5-5.6): it predicts the misses a *random* probe pattern
/// would incur and compares them with the sampled counter; sampling far
/// fewer misses reveals a co-clustered (cache-friendly) join that should
/// run first.

namespace nipo {

/// \brief Probe-side description for the join model.
struct JoinRelationSpec {
  double num_tuples = 0;   ///< R.n: tuples in the probed relation
  double tuple_width = 0;  ///< R.w: bytes per probed tuple (payload touched)
};

/// \brief Equation 2: expected distinct cache lines touched by r uniform
/// random accesses into a relation spanning `total_lines` lines.
double ExpectedDistinctLines(double total_lines, double num_accesses);

/// \brief Equation 1: expected random cache misses at one cache level for
/// `num_accesses` uniform probes into `relation`.
double ExpectedRandomMisses(const JoinRelationSpec& relation,
                            const CacheGeometry& cache, double num_accesses);

/// \brief Expected misses for a *sequential* pass over the relation
/// (original Manegold sequential pattern): one miss per line, independent
/// of cache capacity for a single cold pass.
double ExpectedSequentialMisses(const JoinRelationSpec& relation,
                                const CacheGeometry& cache);

/// \brief Sortedness / co-clusteredness score: sampled misses divided by
/// the random-pattern prediction. Values near 1 mean the probe pattern is
/// effectively random; values near 0 mean the pattern is local
/// (co-clustered), so the join is much cheaper than a cost model assuming
/// randomness would claim.
double CoClusterednessScore(const JoinRelationSpec& relation,
                            const CacheGeometry& cache, double num_accesses,
                            double sampled_misses);

}  // namespace nipo
