#include "cost/join_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

/// \file join_model.cc
/// External-memory-model probe-miss estimates (Equations 1-2): expected
/// distinct cache lines touched by r random probes into a relation,
/// evaluated per hierarchy level with numerically stable expm1/log1p.

namespace nipo {

double ExpectedDistinctLines(double total_lines, double num_accesses) {
  if (total_lines <= 0) return 0.0;
  if (num_accesses <= 0) return 0.0;
  // L * (1 - (1 - 1/L)^r), computed via expm1/log1p for stability when L
  // is large and r small.
  const double log_keep = std::log1p(-1.0 / total_lines);
  return total_lines * -std::expm1(num_accesses * log_keep);
}

double ExpectedRandomMisses(const JoinRelationSpec& relation,
                            const CacheGeometry& cache, double num_accesses) {
  NIPO_CHECK(relation.tuple_width > 0);
  const double relation_bytes = relation.num_tuples * relation.tuple_width;
  const double total_lines =
      std::max(1.0, relation_bytes / static_cast<double>(cache.line_size));
  const double distinct = ExpectedDistinctLines(total_lines, num_accesses);
  const double capacity_lines = static_cast<double>(cache.num_lines());
  if (distinct < capacity_lines) {
    // The working set fits: each distinct line misses exactly once.
    return distinct;
  }
  // Thrashing regime: a probe hits only if it lands on one of the
  // capacity_lines resident lines of the relation.
  const double resident_fraction =
      std::min(1.0, (capacity_lines * cache.line_size) / relation_bytes);
  return num_accesses * (1.0 - resident_fraction);
}

double ExpectedSequentialMisses(const JoinRelationSpec& relation,
                                const CacheGeometry& cache) {
  const double relation_bytes = relation.num_tuples * relation.tuple_width;
  return relation_bytes / static_cast<double>(cache.line_size);
}

double CoClusterednessScore(const JoinRelationSpec& relation,
                            const CacheGeometry& cache, double num_accesses,
                            double sampled_misses) {
  const double predicted =
      ExpectedRandomMisses(relation, cache, num_accesses);
  if (predicted <= 0.0) return 0.0;
  return std::clamp(sampled_misses / predicted, 0.0, 10.0);
}

}  // namespace nipo
