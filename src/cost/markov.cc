#include "cost/markov.h"

#include <algorithm>
#include <cmath>

/// \file markov.cc
/// Closed-form stationary distribution of the saturating-counter
/// birth-death chain and the misprediction probabilities derived from it
/// (Equations 4a-4g and 5a-5f), with care at the p=0, p=1 and p=0.5
/// boundary cases.

namespace nipo {

std::vector<double> MarkovStationaryDistribution(const PredictorConfig& config,
                                                 double p) {
  NIPO_CHECK(config.Valid());
  const int n = config.num_states;
  std::vector<double> pi(static_cast<size_t>(n), 0.0);
  p = std::clamp(p, 0.0, 1.0);
  if (p == 0.0) {
    pi[static_cast<size_t>(n - 1)] = 1.0;  // every branch taken
    return pi;
  }
  if (p == 1.0) {
    pi[0] = 1.0;  // every branch not taken
    return pi;
  }
  const double r = (1.0 - p) / p;
  // pi[i] = r^i / sum_j r^j. Compute in a numerically stable way by
  // normalizing against the largest term.
  std::vector<double> weights(static_cast<size_t>(n));
  double max_log = -1e300;
  const double log_r = std::log(r);
  for (int i = 0; i < n; ++i) {
    const double lw = i * log_r;
    weights[static_cast<size_t>(i)] = lw;
    max_log = std::max(max_log, lw);
  }
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    weights[static_cast<size_t>(i)] =
        std::exp(weights[static_cast<size_t>(i)] - max_log);
    sum += weights[static_cast<size_t>(i)];
  }
  for (int i = 0; i < n; ++i) {
    pi[static_cast<size_t>(i)] = weights[static_cast<size_t>(i)] / sum;
  }
  return pi;
}

std::vector<double> MarkovStationaryByIteration(const PredictorConfig& config,
                                                double p, int iterations) {
  NIPO_CHECK(config.Valid());
  const int n = config.num_states;
  p = std::clamp(p, 0.0, 1.0);
  const double q = 1.0 - p;
  std::vector<double> pi(static_cast<size_t>(n),
                         1.0 / static_cast<double>(n));
  std::vector<double> next(static_cast<size_t>(n), 0.0);
  for (int iter = 0; iter < iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (int i = 0; i < n; ++i) {
      const double mass = pi[static_cast<size_t>(i)];
      // Not taken (prob p): move left, saturating at 0.
      const int left = std::max(0, i - 1);
      next[static_cast<size_t>(left)] += mass * p;
      // Taken (prob q): move right, saturating at n-1.
      const int right = std::min(n - 1, i + 1);
      next[static_cast<size_t>(right)] += mass * q;
    }
    std::swap(pi, next);
  }
  return pi;
}

BranchProbabilities ComputeBranchProbabilities(const PredictorConfig& config,
                                               double p) {
  p = std::clamp(p, 0.0, 1.0);
  const std::vector<double> pi = MarkovStationaryDistribution(config, p);
  BranchProbabilities out;
  for (int i = 0; i < config.num_states; ++i) {
    if (i < config.not_taken_states) {
      out.predict_not_taken += pi[static_cast<size_t>(i)];
    } else {
      out.predict_taken += pi[static_cast<size_t>(i)];
    }
  }
  const double q = 1.0 - p;
  out.taken_mp = q * out.predict_not_taken;
  out.taken_rp = q * out.predict_taken;
  out.not_taken_mp = p * out.predict_taken;
  out.not_taken_rp = p * out.predict_not_taken;
  out.mp = out.taken_mp + out.not_taken_mp;
  out.rp = out.taken_rp + out.not_taken_rp;
  return out;
}

double ZeuchMispredictionFraction(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return std::min(p, 1.0 - p);
}

}  // namespace nipo
