#include "cost/counter_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

/// \file counter_model.cc
/// Assembly of the four-counter prediction (branches not taken,
/// mispredicted-taken, mispredicted-not-taken, L3 accesses) from the
/// branch and cache models, for one candidate selectivity vector.

namespace nipo {

CounterEstimate PredictCounters(const ScanShape& shape,
                                const std::vector<double>& selectivities) {
  NIPO_CHECK(selectivities.size() == shape.predicate_widths.size());
  CounterEstimate out;
  const BranchEstimate branches =
      EstimateScanBranches(shape.predictor, shape.num_tuples, selectivities,
                           shape.branch_free, shape.include_loop_branch);
  out.branches_not_taken = branches.branches_not_taken;
  out.taken_mp = branches.taken_mp;
  out.not_taken_mp = branches.not_taken_mp;
  const std::vector<ScanColumnSpec> columns = BuildScanColumns(
      selectivities, shape.predicate_widths, shape.payload_widths,
      shape.predicate_packed_bytes, shape.payload_packed_bytes);
  out.l3_accesses =
      EstimateScanL3Accesses(shape.cache, shape.num_tuples, columns);
  return out;
}

double CounterDistance(const CounterEstimate& sampled,
                       const CounterEstimate& predicted) {
  auto term = [](double s, double e) {
    return std::abs(s - e) / std::max(std::abs(s), 1.0);
  };
  return term(sampled.branches_not_taken, predicted.branches_not_taken) +
         term(sampled.taken_mp, predicted.taken_mp) +
         term(sampled.not_taken_mp, predicted.not_taken_mp) +
         term(sampled.l3_accesses, predicted.l3_accesses);
}

}  // namespace nipo
