#include "cost/branch_model.h"

#include "common/logging.h"

/// \file branch_model.cc
/// Per-predicate branch-event estimates: scales the Markov-chain
/// misprediction probabilities by the tuple counts flowing into each
/// predicate of the chain.

namespace nipo {

BranchEstimate EstimatePredicateBranches(const PredictorConfig& config,
                                         double input_tuples, double p) {
  const BranchProbabilities probs = ComputeBranchProbabilities(config, p);
  BranchEstimate out;
  out.branches = input_tuples;
  out.branches_not_taken = input_tuples * p;        // qualifying tuples
  out.branches_taken = input_tuples * (1.0 - p);    // failing tuples
  out.taken_mp = input_tuples * probs.taken_mp;
  out.not_taken_mp = input_tuples * probs.not_taken_mp;
  out.mp = input_tuples * probs.mp;
  return out;
}

BranchEstimate EstimateScanBranches(const PredictorConfig& config,
                                    double input_tuples,
                                    const std::vector<double>& selectivities,
                                    bool include_loop_branch) {
  return EstimateScanBranches(config, input_tuples, selectivities,
                              std::vector<bool>(), include_loop_branch);
}

BranchEstimate EstimateScanBranches(const PredictorConfig& config,
                                    double input_tuples,
                                    const std::vector<double>& selectivities,
                                    const std::vector<bool>& branch_free,
                                    bool include_loop_branch) {
  NIPO_CHECK(branch_free.empty() ||
             branch_free.size() == selectivities.size());
  BranchEstimate total;
  double tuples = input_tuples;
  for (size_t i = 0; i < selectivities.size(); ++i) {
    const double p = selectivities[i];
    const bool is_branch_free = i < branch_free.size() && branch_free[i];
    if (!is_branch_free) {
      total += EstimatePredicateBranches(config, tuples, p);
    }
    tuples *= p;  // branch-free forms still narrow the stream
  }
  if (include_loop_branch) {
    // The back-edge is taken for every tuple; a saturating-counter
    // predictor predicts it perfectly in steady state (selectivity 0 from
    // the chain's point of view: never "not taken").
    BranchEstimate loop;
    loop.branches = input_tuples;
    loop.branches_taken = input_tuples;
    total += loop;
  }
  return total;
}

double QualifyingTuplesFromBranchesTaken(double input_tuples,
                                         double branches_taken) {
  return 2.0 * input_tuples - branches_taken;
}

PredicateFormCosts PricePredicateForms(const CycleModel& cycles,
                                       const PredictorConfig& predictor,
                                       double selectivity,
                                       double compare_instructions,
                                       double branch_free_instructions,
                                       double extra_instructions) {
  const BranchProbabilities probs =
      ComputeBranchProbabilities(predictor, selectivity);
  PredicateFormCosts out;
  out.branching =
      (compare_instructions + extra_instructions) *
          cycles.cycles_per_instruction +
      cycles.branch_cycles + probs.mp * cycles.misprediction_penalty;
  out.branch_free = (branch_free_instructions + extra_instructions) *
                    cycles.cycles_per_instruction;
  return out;
}

double ComputeFormCrossover(const CycleModel& cycles,
                            const PredictorConfig& predictor,
                            double compare_instructions,
                            double branch_free_instructions,
                            double extra_instructions) {
  // The extra instructions cancel; the forms tie at misprediction
  // probability mp* = ((bf - cmp) * cpi - branch_cycles) / penalty.
  (void)extra_instructions;
  const double target_mp =
      ((branch_free_instructions - compare_instructions) *
           cycles.cycles_per_instruction -
       cycles.branch_cycles) /
      cycles.misprediction_penalty;
  auto mp_at = [&](double s) {
    return ComputeBranchProbabilities(predictor, s).mp;
  };
  if (target_mp <= mp_at(0.0)) return 0.0;  // branch-free always wins
  if (target_mp >= mp_at(0.5)) return 1.0;  // branching always wins
  // mp(s) is monotone increasing on [0, 0.5]; bisect for mp(s) = mp*.
  double lo = 0.0;
  double hi = 0.5;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (mp_at(mid) < target_mp) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace nipo
