#include "cost/branch_model.h"

/// \file branch_model.cc
/// Per-predicate branch-event estimates: scales the Markov-chain
/// misprediction probabilities by the tuple counts flowing into each
/// predicate of the chain.

namespace nipo {

BranchEstimate EstimatePredicateBranches(const PredictorConfig& config,
                                         double input_tuples, double p) {
  const BranchProbabilities probs = ComputeBranchProbabilities(config, p);
  BranchEstimate out;
  out.branches = input_tuples;
  out.branches_not_taken = input_tuples * p;        // qualifying tuples
  out.branches_taken = input_tuples * (1.0 - p);    // failing tuples
  out.taken_mp = input_tuples * probs.taken_mp;
  out.not_taken_mp = input_tuples * probs.not_taken_mp;
  out.mp = input_tuples * probs.mp;
  return out;
}

BranchEstimate EstimateScanBranches(const PredictorConfig& config,
                                    double input_tuples,
                                    const std::vector<double>& selectivities,
                                    bool include_loop_branch) {
  BranchEstimate total;
  double tuples = input_tuples;
  for (double p : selectivities) {
    total += EstimatePredicateBranches(config, tuples, p);
    tuples *= p;
  }
  if (include_loop_branch) {
    // The back-edge is taken for every tuple; a saturating-counter
    // predictor predicts it perfectly in steady state (selectivity 0 from
    // the chain's point of view: never "not taken").
    BranchEstimate loop;
    loop.branches = input_tuples;
    loop.branches_taken = input_tuples;
    total += loop;
  }
  return total;
}

double QualifyingTuplesFromBranchesTaken(double input_tuples,
                                         double branches_taken) {
  return 2.0 * input_tuples - branches_taken;
}

}  // namespace nipo
