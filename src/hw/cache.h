#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"

/// \file cache.h
/// Simulated multi-level cache hierarchy.
///
/// The paper samples the number of L3 cache accesses -- demand requests
/// from the upper levels plus prefetch requests -- as one of its four
/// monitored events (Section 2.2.2), and its cache cost model (Section
/// 3.1) is a model of exactly this mechanism: line-granularity transfers
/// through an inclusive L1/L2/L3 hierarchy with a next-line prefetcher.
/// This module simulates that mechanism with set-associative LRU caches so
/// the executor produces the same counter stream a real PMU would, in a
/// fully deterministic way.

namespace nipo {

/// Which level of the hierarchy served an access.
enum class MemoryLevel : int {
  kL1 = 0,
  kL2 = 1,
  kL3 = 2,
  kMemory = 3,
};

std::string_view MemoryLevelToString(MemoryLevel level);

/// \brief Geometry of one cache level.
struct CacheGeometry {
  uint64_t capacity_bytes = 32 * 1024;
  uint32_t associativity = 8;
  uint32_t line_size = 64;

  uint64_t num_lines() const { return capacity_bytes / line_size; }
  uint64_t num_sets() const { return num_lines() / associativity; }
};

/// \brief One set-associative, true-LRU cache level, tracked at line
/// granularity.
class CacheLevel {
 public:
  explicit CacheLevel(CacheGeometry geometry);

  const CacheGeometry& geometry() const { return geometry_; }

  /// Looks up the line; on hit refreshes LRU and returns true.
  bool Lookup(uint64_t line_addr);

  /// Inserts the line (evicting the set's LRU victim if needed).
  /// `prefetched` marks the line as brought in by the prefetcher; the
  /// first demand hit consumes the mark (AccessFill's `was_prefetched`).
  void Insert(uint64_t line_addr, bool prefetched = false);

  /// Demand-path fusion of Lookup + (on miss) Insert in one set walk:
  /// on hit refreshes LRU, counts the hit, optionally consumes the
  /// prefetched mark into `*was_prefetched`, and returns true; on miss
  /// counts it, installs the line over the first-empty-else-LRU victim,
  /// and returns false. Counter- and LRU-identical to the unfused call
  /// sequence — a level's stamp clock only advances on its own
  /// operations, and nothing touches the level between its probe and its
  /// fill — it just resolves the set once instead of twice.
  bool AccessFill(uint64_t line_addr, bool* was_prefetched = nullptr);

  /// Prefetch-path fusion of Contains + (if absent) Insert(prefetched):
  /// returns true and does nothing when the line is resident (the
  /// hardware squashes the request; deliberately no LRU refresh, like
  /// Contains); otherwise installs the line with the prefetched mark and
  /// returns false. Touches no hit/miss counters, like the calls it
  /// fuses.
  bool FillIfAbsent(uint64_t line_addr);

  /// What an owner-tagged access observed (shared levels only; see
  /// SharedCacheDomain).
  struct OwnedAccess {
    bool hit = false;
    uint32_t prev_owner = 0;  ///< owner the hit line belonged to before
    bool displaced = false;   ///< a resident line was evicted by the fill
    uint32_t victim_owner = 0;  ///< owner of the displaced line
  };

  /// Owner-tagged variant of AccessFill for a level shared between
  /// machines: on hit, refreshes LRU, counts the hit, reports the line's
  /// previous owner and re-tags it to `owner` (last accessor owns); on
  /// miss, counts it, installs the line tagged `owner`, and reports
  /// whether a resident line was displaced and whose it was. With a
  /// single owner this is hit/miss- and LRU-identical to AccessFill
  /// (same set walk, same victim choice) — the contention=off
  /// bit-equality gates rely on that.
  OwnedAccess AccessFillOwned(uint64_t line_addr, uint32_t owner);

  /// Number of currently resident lines (full scan; audit/test use).
  uint64_t occupied_lines() const;

  /// True iff the line is currently resident (no LRU update; for tests and
  /// for prefetch-avoidance checks).
  bool Contains(uint64_t line_addr) const;

  /// Drops all contents.
  void Clear();

  /// The set a line maps to. Exposed so tests can construct colliding
  /// and non-colliding line addresses.
  size_t SetOf(uint64_t line_addr) const { return SetIndex(line_addr); }

  /// Credits `n` coalesced same-line touches as hits without re-running
  /// Lookup. Exact by construction: the batched reporting layer only
  /// coalesces touches of the line accessed immediately before, which a
  /// replayed Lookup would classify as a hit with certainty (the line was
  /// just installed/refreshed and nothing intervened; see DESIGN.md
  /// "Batched simulation"). Skipping the LRU refresh is equally safe:
  /// the line is already the most recent in its set, so the relative
  /// stamp order — the only thing eviction decisions read — is unchanged.
  void AddCoalescedHits(uint64_t n) { hits_ += n; }

  /// Number of sets after power-of-two normalization (see constructor).
  uint64_t num_sets() const { return num_sets_; }
  uint32_t ways() const { return ways_; }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t accesses() const { return hits_ + misses_; }
  void ResetStats() { hits_ = misses_ = 0; }

 private:
  struct Way {
    uint64_t tag = kEmptyTag;
    uint64_t lru_stamp = 0;
    bool prefetched = false;
    uint32_t owner = 0;  ///< owner id in shared levels; unused otherwise
  };
  static constexpr uint64_t kEmptyTag = ~uint64_t{0};

  /// Hashed set mapping (splitmix64 finalizer). Plain modulo mapping
  /// makes equally-aligned column allocations -- page-aligned vectors all
  /// place row i in the same set -- thrash any set once the stream count
  /// exceeds the associativity ("4K aliasing"). Real LLCs hash the set
  /// index for the same reason; hashing also decouples the simulation
  /// from accidental heap-layout choices. The set count is normalized to
  /// a power of two at construction, so the reduction is a mask rather
  /// than the `%` that used to dominate Lookup profiles.
  size_t SetIndex(uint64_t line_addr) const {
    uint64_t z = line_addr + 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    return static_cast<size_t>(z & set_mask_);
  }

  CacheGeometry geometry_;
  uint64_t num_sets_;
  uint64_t set_mask_;
  uint32_t ways_;
  std::vector<Way> slots_;  // num_sets_ * ways_, row-major by set
  // Most-recently-touched way per set: Lookup probes it first, so the
  // dominant hot-line hit costs one compare instead of a way scan.
  std::vector<uint32_t> mru_;
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

/// \brief Counters accumulated by the hierarchy. "L3 accesses" follows the
/// paper's definition: demand requests that reach L3 plus prefetcher
/// requests (Section 2.2.2).
struct CacheStats {
  uint64_t l1_accesses = 0;
  uint64_t l1_misses = 0;
  uint64_t l2_accesses = 0;
  uint64_t l2_misses = 0;
  uint64_t l3_accesses = 0;
  uint64_t l3_misses = 0;
  uint64_t prefetch_requests = 0;

  CacheStats& operator-=(const CacheStats& other);
  CacheStats operator-(const CacheStats& other) const;
};

/// \brief Three-level inclusive hierarchy with an optional streaming
/// next-line prefetcher.
///
/// The prefetcher models the paper's key cache-model refinement: on an L2
/// demand miss for line X -- or the first demand use of a line it
/// prefetched itself (stream continuation) -- it issues a request for
/// line X+1. A sequential scan therefore pays one L3 access per line and
/// is served from L2 after the first line (the latency-hidden streaming
/// of real hardware), while a scan that *skips* lines pays two L3
/// accesses per touched line -- the wasted prefetch plus the demand fetch
/// -- which is precisely the "double counted random miss" the paper adds
/// to Pirk et al.'s model (Section 3.1).
class SharedCacheDomain;

class CacheHierarchy {
 public:
  CacheHierarchy(CacheGeometry l1, CacheGeometry l2, CacheGeometry l3,
                 bool enable_prefetcher = true);

  /// Routes this hierarchy's L3 fills (demand and prefetch) through a
  /// shared domain under `owner`'s id; L1/L2 stay private. The private
  /// L3 level is bypassed while attached. Pass nullptr to detach. The
  /// hierarchy's own stats_ keep counting l3_accesses/l3_misses, so the
  /// owning machine's counters stay per-owner automatically. Note the
  /// model keeps no back-invalidation: lines another owner evicts from
  /// the shared L3 may linger in this hierarchy's private L2 (documented
  /// simplification, DESIGN.md Section 6).
  void AttachSharedL3(SharedCacheDomain* domain, uint32_t owner) {
    shared_l3_ = domain;
    shared_owner_ = owner;
  }
  bool shared_l3_attached() const { return shared_l3_ != nullptr; }

  /// Performs a demand load of `width` bytes at `addr`. Accesses that
  /// straddle a line boundary touch both lines. Returns the deepest level
  /// that had to be consulted for the first touched line.
  MemoryLevel Access(uint64_t addr, uint32_t width);

  /// Line-granularity access used by the executor (addresses are already
  /// line-aligned by the caller).
  MemoryLevel AccessLine(uint64_t line_addr);

  /// Books `n` coalesced touches of the line accessed immediately before:
  /// counts them as L1 accesses served by L1 hits without walking the
  /// hierarchy. Only the batched reporting layer calls this, and only for
  /// touches a scalar replay would classify as certain L1 hits (see
  /// CacheLevel::AddCoalescedHits for the invariance argument).
  void CountCoalescedL1Hits(uint64_t n) {
    stats_.l1_accesses += n;
    l1_.AddCoalescedHits(n);
  }

  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats{}; }

  /// Drops all cached contents and statistics.
  void Clear();

  uint32_t line_size() const { return l1_.geometry().line_size; }

  const CacheLevel& l1() const { return l1_; }
  const CacheLevel& l2() const { return l2_; }
  const CacheLevel& l3() const { return l3_; }

 private:
  /// Demand path for one line; fills all levels (inclusive).
  MemoryLevel DemandAccess(uint64_t line_addr);
  /// Prefetch path: brings the line into L2+L3 (not L1), counting an L3
  /// access (and miss, if absent).
  void Prefetch(uint64_t line_addr);
  /// L3 probe-and-fill: private level, or the shared domain if attached.
  /// Returns true on hit.
  bool AccessL3(uint64_t line_addr);

  CacheLevel l1_;
  CacheLevel l2_;
  CacheLevel l3_;
  bool prefetcher_enabled_;
  CacheStats stats_;
  SharedCacheDomain* shared_l3_ = nullptr;
  uint32_t shared_owner_ = 0;
};

}  // namespace nipo
