#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "hw/branch_predictor.h"
#include "hw/cache.h"

/// \file pmu.h
/// Simulated Performance Monitoring Unit.
///
/// This is the repository's substitution for the paper's non-invasive
/// hardware counters (DESIGN.md Section 1): the executor reports its
/// dynamic events (instructions, loads, conditional branches) to a Pmu,
/// which drives the simulated branch predictor and cache hierarchy and
/// accumulates exactly the event vocabulary of the paper's Section 2.2:
///
///  - conditional branches, branches taken / not taken,
///  - mispredictions, split into mispredicted-taken and
///    mispredicted-not-taken,
///  - cache accesses and misses per level, with L3 accesses counting
///    demand plus prefetch requests,
///  - retired instructions and simulated core cycles.
///
/// Sampling follows the PMU programming model: take a Snapshot before and
/// after a region and subtract, exactly like PAPI_read around a query
/// vector.

namespace nipo {

/// \brief The counter values visible to the optimizer. All counts are
/// cumulative since the last Reset(); use Snapshot subtraction for
/// windowed samples.
struct PmuCounters {
  uint64_t instructions = 0;
  uint64_t branches = 0;            ///< conditional branches executed
  uint64_t branches_taken = 0;
  uint64_t branches_not_taken = 0;
  uint64_t mispredictions = 0;
  uint64_t taken_mispredictions = 0;      ///< actually taken, predicted NT
  uint64_t not_taken_mispredictions = 0;  ///< actually not taken, predicted T
  uint64_t l1_accesses = 0;
  uint64_t l1_misses = 0;
  uint64_t l2_accesses = 0;
  uint64_t l2_misses = 0;
  uint64_t l3_accesses = 0;  ///< demand + prefetch requests reaching L3
  uint64_t l3_misses = 0;
  uint64_t prefetch_requests = 0;
  /// Shared-L3 cross-owner eviction counters (hw/shared_cache.h); always
  /// zero for a detached machine and for a single owner, so every
  /// contention=off bit-equality gate is unaffected.
  uint64_t l3_evictions_caused = 0;  ///< other owners' lines this one evicted
  uint64_t l3_evictions_suffered = 0;  ///< own lines evicted by other owners
  uint64_t cycles = 0;  ///< simulated core cycles (see CycleModel)

  PmuCounters operator-(const PmuCounters& other) const;
  PmuCounters& operator+=(const PmuCounters& other);
  bool operator==(const PmuCounters& other) const = default;
  std::string ToString() const;
};

/// \brief Maps micro-events to simulated core cycles.
///
/// The constants follow the usual back-of-envelope numbers for the Ivy
/// Bridge generation the paper evaluates on; only their ratios matter for
/// reproducing the paper's run-time *shapes* (DESIGN.md Section 1).
struct CycleModel {
  double cycles_per_instruction = 0.5;  ///< superscalar issue
  double branch_cycles = 0.5;           ///< correctly predicted branch
  double misprediction_penalty = 15.0;  ///< pipeline flush
  double l1_hit_cycles = 1.0;
  double l2_hit_cycles = 10.0;
  double l3_hit_cycles = 30.0;
  double memory_cycles = 90.0;  ///< effective (bandwidth-amortized) miss cost
  double frequency_ghz = 2.6;   ///< Xeon E5-2630 v2

  /// Cycle cost of a load served at `level`.
  double LoadCycles(MemoryLevel level) const;
};

/// \brief Full description of the simulated machine.
struct HwConfig {
  PredictorConfig predictor = PredictorConfig::Symmetric(6);
  CacheGeometry l1{32 * 1024, 8, 64};
  CacheGeometry l2{256 * 1024, 8, 64};
  CacheGeometry l3{15 * 1024 * 1024, 20, 64};
  bool prefetcher = true;
  CycleModel cycle_model;

  /// The paper's evaluation machine: Intel Xeon E5-2630 v2 (Ivy Bridge EP),
  /// 2.6 GHz, 32 KB L1d / 256 KB L2 per core, 15 MB shared L3, 6-state
  /// predictor behaviour.
  static HwConfig XeonE5_2630v2();

  /// Same machine with cache capacities divided by `divisor`. The
  /// experiments shrink both the data set and the caches by the same
  /// factor, preserving the data-to-cache ratios that the paper's locality
  /// effects depend on, while keeping simulation time on a laptop budget.
  static HwConfig ScaledXeon(uint64_t divisor);

  /// Predictor-variant presets used by Figure 6 (micro-architecture
  /// comparison) and the paper's AMD remark.
  static HwConfig WithPredictor(PredictorConfig predictor);
};

/// \brief How executors report their event stream to the Pmu.
///
/// The *events* are identical either way; the mode only selects the
/// mechanics of booking them. kBatched is the default and roughly an
/// order of magnitude cheaper on scan-shaped work; kScalar replays every
/// run one event at a time and exists so differential tests can prove the
/// two modes produce bit-identical PmuCounters (tests/pmu_batch_test.cc,
/// DESIGN.md "Batched simulation").
enum class ReportingMode : int {
  kScalar,   ///< one predictor/cache walk per event
  kBatched,  ///< run coalescing + closed-form predictor updates
};

/// \brief The simulated PMU: one predictor + one cache hierarchy + cycle
/// accounting, shared by all operators of a running query.
///
/// Threading: a Pmu is a *core-private* machine — it is not synchronized,
/// and every worker thread of a sharded execution must own its own
/// instance (see CloneFresh and DESIGN.md "Parallel execution").
class Pmu {
 public:
  explicit Pmu(HwConfig config = HwConfig::XeonE5_2630v2());

  const HwConfig& config() const { return config_; }

  /// Creates a fresh machine with the same configuration and reporting
  /// mode: cold caches, neutral predictor, zero counters. This is the
  /// per-worker machine construction path of the parallel driver
  /// (exec/parallel_driver.h): every worker thread gets an identically
  /// configured private core. ResetMachine() is the in-place equivalent
  /// for a machine that is reused rather than cloned.
  Pmu CloneFresh() const {
    Pmu fresh(config_);
    fresh.reporting_mode_ = reporting_mode_;
    return fresh;
  }

  ReportingMode reporting_mode() const { return reporting_mode_; }
  void set_reporting_mode(ReportingMode mode) { reporting_mode_ = mode; }

  /// Registers `n` static branch sites (idempotent growth).
  void EnsureBranchSites(size_t n) { predictor_.EnsureSites(n); }

  /// Reports `n` retired non-branch, non-load instructions.
  void OnInstructions(uint64_t n) {
    counters_.instructions += n;
    plain_instructions_ += n;
  }

  /// Reports one conditional branch at `site` with actual direction
  /// `taken`; runs the predictor and charges cycles.
  void OnBranch(size_t site, bool taken) {
    const BranchOutcome out = predictor_.Observe(site, taken);
    BookBranches(taken, 1, out.mispredicted ? 1 : 0);
  }

  /// Reports `n` consecutive branches at `site` that all went direction
  /// `taken` (executors emit one call per maximal uniform run). The
  /// batched mode resolves the predictor walk in closed form
  /// (BranchPredictor::ObserveRun); the scalar mode replays the run
  /// event by event. Counter-identical either way.
  void OnBranchRun(size_t site, bool taken, uint64_t n) {
    if (reporting_mode_ == ReportingMode::kScalar) {
      for (uint64_t i = 0; i < n; ++i) OnBranch(site, taken);
      return;
    }
    BookBranches(taken, n, predictor_.ObserveRun(site, taken, n));
  }

  /// Reports one conditional branch per evaluated element at `site`, in
  /// element order, from the executor's pass flags: the branch is taken
  /// iff the flag is zero (not taken = the tuple qualifies, the
  /// convention of every scan loop here). Maximal uniform runs collapse
  /// into OnBranchRun calls — the one place the run grouping is
  /// implemented, so every executor's branch stream coalesces the same
  /// way.
  void OnPredicateBranches(size_t site, const uint8_t* pass_flags,
                           size_t n) {
    for (size_t j = 0; j < n;) {
      size_t k = j + 1;
      while (k < n && pass_flags[k] == pass_flags[j]) ++k;
      OnBranchRun(site, /*taken=*/pass_flags[j] == 0, k - j);
      j = k;
    }
  }

  /// Reports a demand load of `width` bytes at `addr`; runs the cache
  /// hierarchy and charges cycles for the serving level.
  MemoryLevel OnLoad(const void* addr, uint32_t width) {
    return OnLoadAddr(reinterpret_cast<uint64_t>(addr), width);
  }
  MemoryLevel OnLoadAddr(uint64_t addr, uint32_t width) {
    ++counters_.instructions;
    const MemoryLevel level = caches_.Access(addr, width);
    ++loads_served_[static_cast<int>(level)];
    return level;
  }

  /// Reports `count` loads of one `width`-byte element each at
  /// `base, base + width, ...` — the column stride-1 run every scan hot
  /// loop produces. The batched mode touches the hierarchy once per
  /// distinct cache line and books the remaining same-line touches as
  /// the L1 hits a scalar replay would certainly produce.
  void OnSequentialLoads(const void* base, uint32_t width, uint64_t count);

  /// Reports `count` loads of `width`-byte elements at rows
  /// `indices[0..count)` of the array starting at `base` (a gather over a
  /// selection vector or probe-key list). Consecutive touches of the same
  /// line — adjacent surviving rows, clustered keys — coalesce exactly
  /// like the sequential form.
  void OnGatherLoads(const void* base, uint32_t width,
                     const uint32_t* indices, size_t count);

  /// Charges raw cycles (used to model the cost of reading the counters
  /// themselves, which the paper shows to be negligible).
  void ChargeCycles(double cycles) { charged_cycles_ += cycles; }

  /// Reads the current counter values (the PAPI_read equivalent).
  PmuCounters Read() const;

  /// Clears counters and cycle accumulation; keeps predictor/cache state
  /// (a real PMU reset does not flush the caches either).
  void ResetCounters();

  /// Full machine reset: counters, predictor history, cache contents.
  void ResetMachine();

  /// Simulated wall-clock milliseconds for `counters`.
  double ToMilliseconds(const PmuCounters& counters) const;

  /// Attaches this machine's L3 to a shared domain under `owner`'s id
  /// (see hw/shared_cache.h): L1/L2 stay private, L3 fills route through
  /// the domain, and Read() windows the owner's cross-owner eviction
  /// counters like the cache stats (baselined at ResetCounters). Pass
  /// nullptr to detach. CloneFresh() never copies an attachment.
  void AttachSharedL3(SharedCacheDomain* domain, uint32_t owner);
  bool shared_l3_attached() const { return shared_l3_ != nullptr; }

  /// Lines this machine currently / at peak owns in the attached shared
  /// L3 (0 when detached). Gauges, deliberately not PmuCounters fields:
  /// occupancy is instantaneous state, not an accumulated event count,
  /// and folding it into the counter vector would break windowed
  /// subtraction and counter equality.
  uint64_t SharedL3OccupancyLines() const;
  uint64_t SharedL3PeakOccupancyLines() const;

  BranchPredictor& predictor() { return predictor_; }
  const CacheHierarchy& caches() const { return caches_; }

 private:
  void SyncCacheStats(PmuCounters* c) const;

  /// Cache-line index of a byte address; shift-based for the (universal)
  /// power-of-two line sizes, division otherwise.
  uint64_t LineOf(uint64_t addr) const {
    return line_shift_ >= 0 ? addr >> line_shift_ : addr / line_size_;
  }

  /// Books `n` same-direction branches of which `mispredicted` were
  /// mispredicted (shared by the scalar and batched paths).
  void BookBranches(bool taken, uint64_t n, uint64_t mispredicted) {
    counters_.branches += n;
    counters_.instructions += n;
    if (taken) {
      counters_.branches_taken += n;
      counters_.taken_mispredictions += mispredicted;
    } else {
      counters_.branches_not_taken += n;
      counters_.not_taken_mispredictions += mispredicted;
    }
    counters_.mispredictions += mispredicted;
  }

  HwConfig config_;
  BranchPredictor predictor_;
  CacheHierarchy caches_;
  PmuCounters counters_;
  ReportingMode reporting_mode_ = ReportingMode::kBatched;
  // Cycle accounting is event-count based: Read() prices the totals
  // below through the CycleModel. Keeping counts instead of a running
  // double sum is what makes bulk (batched) and per-event (scalar)
  // reporting produce identical cycles for *any* cycle model — the two
  // paths increment the same integers and the pricing arithmetic runs
  // once, at read time.
  uint64_t plain_instructions_ = 0;  ///< OnInstructions units (CPI-priced)
  uint64_t loads_served_[4] = {0, 0, 0, 0};  ///< demand loads per level
  double charged_cycles_ = 0.0;              ///< raw ChargeCycles sum
  uint32_t line_size_ = 64;                  ///< hierarchy line size
  int line_shift_ = 6;  ///< log2(line_size_), or -1 if not a power of two
  // Cache stats baseline at last ResetCounters(), so counter windows
  // subtract correctly while the hierarchy keeps warm state.
  CacheStats cache_baseline_;
  // Shared-L3 attachment (nullptr when detached) and the owner's
  // eviction-counter baselines, refreshed alongside cache_baseline_.
  SharedCacheDomain* shared_l3_ = nullptr;
  uint32_t shared_owner_ = 0;
  uint64_t shared_evictions_caused_base_ = 0;
  uint64_t shared_evictions_suffered_base_ = 0;
};

/// \brief A windowed counter sample — the PAPI_read-pair idiom every
/// driver uses (read before a region, read after, subtract). Open()
/// snapshots the counters; Delta() is the activity since the last Open().
/// Reading is side-effect free; modelling the *cost* of a read stays with
/// the caller (the drivers charge kCounterReadCycles per sampling read,
/// while pure observers — per-step accounting in the workload driver —
/// charge nothing, keeping them invisible to the simulated machine).
class CounterWindow {
 public:
  explicit CounterWindow(const Pmu* pmu) : pmu_(pmu) { Open(); }

  void Open() { begin_ = pmu_->Read(); }
  PmuCounters Delta() const { return pmu_->Read() - begin_; }

 private:
  const Pmu* pmu_;
  PmuCounters begin_;
};

}  // namespace nipo
