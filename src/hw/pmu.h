#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "hw/branch_predictor.h"
#include "hw/cache.h"

/// \file pmu.h
/// Simulated Performance Monitoring Unit.
///
/// This is the repository's substitution for the paper's non-invasive
/// hardware counters (DESIGN.md Section 1): the executor reports its
/// dynamic events (instructions, loads, conditional branches) to a Pmu,
/// which drives the simulated branch predictor and cache hierarchy and
/// accumulates exactly the event vocabulary of the paper's Section 2.2:
///
///  - conditional branches, branches taken / not taken,
///  - mispredictions, split into mispredicted-taken and
///    mispredicted-not-taken,
///  - cache accesses and misses per level, with L3 accesses counting
///    demand plus prefetch requests,
///  - retired instructions and simulated core cycles.
///
/// Sampling follows the PMU programming model: take a Snapshot before and
/// after a region and subtract, exactly like PAPI_read around a query
/// vector.

namespace nipo {

/// \brief The counter values visible to the optimizer. All counts are
/// cumulative since the last Reset(); use Snapshot subtraction for
/// windowed samples.
struct PmuCounters {
  uint64_t instructions = 0;
  uint64_t branches = 0;            ///< conditional branches executed
  uint64_t branches_taken = 0;
  uint64_t branches_not_taken = 0;
  uint64_t mispredictions = 0;
  uint64_t taken_mispredictions = 0;      ///< actually taken, predicted NT
  uint64_t not_taken_mispredictions = 0;  ///< actually not taken, predicted T
  uint64_t l1_accesses = 0;
  uint64_t l1_misses = 0;
  uint64_t l2_accesses = 0;
  uint64_t l2_misses = 0;
  uint64_t l3_accesses = 0;  ///< demand + prefetch requests reaching L3
  uint64_t l3_misses = 0;
  uint64_t prefetch_requests = 0;
  uint64_t cycles = 0;  ///< simulated core cycles (see CycleModel)

  PmuCounters operator-(const PmuCounters& other) const;
  PmuCounters& operator+=(const PmuCounters& other);
  bool operator==(const PmuCounters& other) const = default;
  std::string ToString() const;
};

/// \brief Maps micro-events to simulated core cycles.
///
/// The constants follow the usual back-of-envelope numbers for the Ivy
/// Bridge generation the paper evaluates on; only their ratios matter for
/// reproducing the paper's run-time *shapes* (DESIGN.md Section 1).
struct CycleModel {
  double cycles_per_instruction = 0.5;  ///< superscalar issue
  double branch_cycles = 0.5;           ///< correctly predicted branch
  double misprediction_penalty = 15.0;  ///< pipeline flush
  double l1_hit_cycles = 1.0;
  double l2_hit_cycles = 10.0;
  double l3_hit_cycles = 30.0;
  double memory_cycles = 90.0;  ///< effective (bandwidth-amortized) miss cost
  double frequency_ghz = 2.6;   ///< Xeon E5-2630 v2

  /// Cycle cost of a load served at `level`.
  double LoadCycles(MemoryLevel level) const;
};

/// \brief Full description of the simulated machine.
struct HwConfig {
  PredictorConfig predictor = PredictorConfig::Symmetric(6);
  CacheGeometry l1{32 * 1024, 8, 64};
  CacheGeometry l2{256 * 1024, 8, 64};
  CacheGeometry l3{15 * 1024 * 1024, 20, 64};
  bool prefetcher = true;
  CycleModel cycle_model;

  /// The paper's evaluation machine: Intel Xeon E5-2630 v2 (Ivy Bridge EP),
  /// 2.6 GHz, 32 KB L1d / 256 KB L2 per core, 15 MB shared L3, 6-state
  /// predictor behaviour.
  static HwConfig XeonE5_2630v2();

  /// Same machine with cache capacities divided by `divisor`. The
  /// experiments shrink both the data set and the caches by the same
  /// factor, preserving the data-to-cache ratios that the paper's locality
  /// effects depend on, while keeping simulation time on a laptop budget.
  static HwConfig ScaledXeon(uint64_t divisor);

  /// Predictor-variant presets used by Figure 6 (micro-architecture
  /// comparison) and the paper's AMD remark.
  static HwConfig WithPredictor(PredictorConfig predictor);
};

/// \brief The simulated PMU: one predictor + one cache hierarchy + cycle
/// accounting, shared by all operators of a running query.
///
/// Threading: a Pmu is a *core-private* machine — it is not synchronized,
/// and every worker thread of a sharded execution must own its own
/// instance (see CloneFresh and DESIGN.md "Parallel execution").
class Pmu {
 public:
  explicit Pmu(HwConfig config = HwConfig::XeonE5_2630v2());

  const HwConfig& config() const { return config_; }

  /// Creates a fresh machine with the same configuration: cold caches,
  /// neutral predictor, zero counters. This is the per-worker machine
  /// construction path of the parallel driver (exec/parallel_driver.h):
  /// every worker thread gets an identically configured private core.
  /// ResetMachine() is the in-place equivalent for a machine that is
  /// reused rather than cloned.
  Pmu CloneFresh() const { return Pmu(config_); }

  /// Registers `n` static branch sites (idempotent growth).
  void EnsureBranchSites(size_t n) { predictor_.EnsureSites(n); }

  /// Reports `n` retired non-branch, non-load instructions.
  void OnInstructions(uint64_t n) {
    counters_.instructions += n;
    cycle_acc_ += config_.cycle_model.cycles_per_instruction *
                  static_cast<double>(n);
  }

  /// Reports one conditional branch at `site` with actual direction
  /// `taken`; runs the predictor and charges cycles.
  void OnBranch(size_t site, bool taken) {
    const BranchOutcome out = predictor_.Observe(site, taken);
    ++counters_.branches;
    ++counters_.instructions;
    if (taken) {
      ++counters_.branches_taken;
    } else {
      ++counters_.branches_not_taken;
    }
    double cycles = config_.cycle_model.branch_cycles;
    if (out.mispredicted) {
      ++counters_.mispredictions;
      if (taken) {
        ++counters_.taken_mispredictions;
      } else {
        ++counters_.not_taken_mispredictions;
      }
      cycles += config_.cycle_model.misprediction_penalty;
    }
    cycle_acc_ += cycles;
  }

  /// Reports a demand load of `width` bytes at `addr`; runs the cache
  /// hierarchy and charges cycles for the serving level.
  MemoryLevel OnLoad(const void* addr, uint32_t width) {
    return OnLoadAddr(reinterpret_cast<uint64_t>(addr), width);
  }
  MemoryLevel OnLoadAddr(uint64_t addr, uint32_t width) {
    ++counters_.instructions;
    const MemoryLevel level = caches_.Access(addr, width);
    cycle_acc_ += config_.cycle_model.LoadCycles(level);
    return level;
  }

  /// Charges raw cycles (used to model the cost of reading the counters
  /// themselves, which the paper shows to be negligible).
  void ChargeCycles(double cycles) { cycle_acc_ += cycles; }

  /// Reads the current counter values (the PAPI_read equivalent).
  PmuCounters Read() const;

  /// Clears counters and cycle accumulation; keeps predictor/cache state
  /// (a real PMU reset does not flush the caches either).
  void ResetCounters();

  /// Full machine reset: counters, predictor history, cache contents.
  void ResetMachine();

  /// Simulated wall-clock milliseconds for `counters`.
  double ToMilliseconds(const PmuCounters& counters) const;

  BranchPredictor& predictor() { return predictor_; }
  const CacheHierarchy& caches() const { return caches_; }

 private:
  void SyncCacheStats(PmuCounters* c) const;

  HwConfig config_;
  BranchPredictor predictor_;
  CacheHierarchy caches_;
  PmuCounters counters_;
  double cycle_acc_ = 0.0;
  // Cache stats baseline at last ResetCounters(), so counter windows
  // subtract correctly while the hierarchy keeps warm state.
  CacheStats cache_baseline_;
};

}  // namespace nipo
