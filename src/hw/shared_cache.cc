#include "hw/shared_cache.h"

/// \file shared_cache.cc
/// Per-owner occupancy and eviction accounting layered over one
/// owner-tagged CacheLevel (CacheLevel::AccessFillOwned).

namespace nipo {

SharedCacheDomain::SharedCacheDomain(CacheGeometry geometry)
    : level_(geometry),
      capacity_lines_(level_.num_sets() *
                      static_cast<uint64_t>(level_.ways())) {}

uint32_t SharedCacheDomain::RegisterOwner(std::string name) {
  const uint32_t id = static_cast<uint32_t>(owners_.size());
  owners_.emplace_back();
  names_.push_back(std::move(name));
  return id;
}

bool SharedCacheDomain::AccessFill(uint32_t owner, uint64_t line_addr) {
  NIPO_DCHECK(owner < owners_.size());
  const CacheLevel::OwnedAccess r = level_.AccessFillOwned(line_addr, owner);
  OwnerStats& s = owners_[owner];
  if (r.hit) {
    ++s.hits;
    if (r.prev_owner != owner) {
      // Ownership transfer on a cross-owner hit: the line now serves the
      // accessor's working set. Not an eviction — nothing left the cache.
      NIPO_DCHECK(owners_[r.prev_owner].occupancy_lines > 0);
      --owners_[r.prev_owner].occupancy_lines;
      ++s.occupancy_lines;
      if (s.occupancy_lines > s.peak_occupancy_lines) {
        s.peak_occupancy_lines = s.occupancy_lines;
      }
    }
    return true;
  }
  ++s.misses;
  if (r.displaced) {
    ++lines_displaced_;
    OwnerStats& victim = owners_[r.victim_owner];
    NIPO_DCHECK(victim.occupancy_lines > 0);
    --victim.occupancy_lines;
    if (r.victim_owner == owner) {
      ++s.self_evictions;
    } else {
      ++victim.evictions_suffered;
      ++s.evictions_caused;
    }
  }
  ++s.occupancy_lines;
  if (s.occupancy_lines > s.peak_occupancy_lines) {
    s.peak_occupancy_lines = s.occupancy_lines;
  }
  return false;
}

uint64_t SharedCacheDomain::total_occupancy_lines() const {
  uint64_t total = 0;
  for (const OwnerStats& s : owners_) total += s.occupancy_lines;
  return total;
}

void SharedCacheDomain::Clear() {
  level_.Clear();
  level_.ResetStats();
  for (OwnerStats& s : owners_) s = OwnerStats{};
  lines_displaced_ = 0;
}

}  // namespace nipo
