#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.h"

/// \file branch_predictor.h
/// Simulated branch prediction unit.
///
/// The paper (Section 3.2) models the CPU's conditional-branch predictor as
/// an N-state saturating counter, i.e. a birth-death Markov chain: each
/// observed not-taken outcome moves the state one step toward the
/// "strongly not taken" end, each taken outcome one step toward "strongly
/// taken" (Figure 5). States in the lower half predict NOT TAKEN, states in
/// the upper half predict TAKEN. The paper finds 6 states to fit Intel
/// micro-architectures (Sandy Bridge through Broadwell) and 4 states to fit
/// AMD, and also evaluates asymmetric variants with one extra taken (+1T)
/// or not-taken (+1NT) state (Figure 3).
///
/// This module is the *hardware* side of that story: it simulates such a
/// predictor per static branch site, which is exactly the mechanism whose
/// stationary behaviour the analytic model in cost/markov.h predicts. The
/// simulated PMU (pmu.h) uses it to produce the taken/not-taken
/// misprediction counters the paper samples from silicon.

namespace nipo {

/// \brief Geometry of an N-state saturating-counter predictor.
struct PredictorConfig {
  /// Total number of states, >= 2.
  int num_states = 6;
  /// Number of states (counting from the "strongly not taken" end) that
  /// predict NOT TAKEN; the remaining states predict TAKEN.
  int not_taken_states = 3;

  /// Symmetric N-state predictor (N even).
  static PredictorConfig Symmetric(int n) {
    return PredictorConfig{n, n / 2};
  }
  /// Odd-state predictor with the extra state on the taken side (+1T):
  /// e.g. 5 states = 2 not-taken + 3 taken.
  static PredictorConfig PlusOneTaken(int n) {
    return PredictorConfig{n, (n - 1) / 2};
  }
  /// Odd-state predictor with the extra state on the not-taken side (+1NT):
  /// e.g. 5 states = 3 not-taken + 2 taken.
  static PredictorConfig PlusOneNotTaken(int n) {
    return PredictorConfig{n, (n + 1) / 2};
  }

  bool Valid() const {
    return num_states >= 2 && not_taken_states >= 1 &&
           not_taken_states < num_states;
  }
};

/// Outcome classification of one predicted branch.
struct BranchOutcome {
  bool taken = false;        ///< actual direction
  bool mispredicted = false; ///< prediction != actual
};

/// \brief Saturating-counter predictor state for a set of static branch
/// sites (a simplified branch history table without aliasing).
///
/// Site ids are small dense integers assigned by the executor, one per
/// conditional branch in the generated scan loop (one per predicate
/// position plus one loop back-edge).
class BranchPredictor {
 public:
  explicit BranchPredictor(PredictorConfig config = PredictorConfig{})
      : config_(config) {
    NIPO_CHECK(config_.Valid());
  }

  const PredictorConfig& config() const { return config_; }

  /// Ensures state exists for sites [0, num_sites). New sites start in the
  /// weakest taken-predicting state (CPUs commonly initialize toward
  /// "weakly taken"; the choice only affects a few warm-up branches).
  void EnsureSites(size_t num_sites) {
    states_.resize(num_sites, config_.not_taken_states);
  }

  size_t num_sites() const { return states_.size(); }

  /// Predicts the branch at `site`, observes the actual direction,
  /// updates the saturating counter, and reports whether the prediction
  /// was wrong.
  BranchOutcome Observe(size_t site, bool taken) {
    NIPO_DCHECK(site < states_.size());
    int& state = states_[site];
    const bool predicted_taken = state >= config_.not_taken_states;
    BranchOutcome out;
    out.taken = taken;
    out.mispredicted = predicted_taken != taken;
    if (taken) {
      if (state < config_.num_states - 1) ++state;
    } else {
      if (state > 0) --state;
    }
    return out;
  }

  /// Observes `n` consecutive branches at `site` that all went the same
  /// direction, in closed form, and returns how many of them were
  /// mispredicted. Equivalent to (and tested against) calling Observe()
  /// `n` times: a saturating counter walks monotonically toward the
  /// observed direction, so the mispredicted observations are exactly the
  /// leading ones spent crossing the predict-not-taken / predict-taken
  /// boundary, and the final state saturates after at most `num_states`
  /// steps. This is the fast path behind Pmu::OnBranchRun (DESIGN.md
  /// "Batched simulation").
  uint64_t ObserveRun(size_t site, bool taken, uint64_t n) {
    NIPO_DCHECK(site < states_.size());
    if (n == 0) return 0;
    int& state = states_[site];
    const int nts = config_.not_taken_states;
    uint64_t mispredicted;
    if (taken) {
      mispredicted =
          state < nts ? std::min<uint64_t>(n, static_cast<uint64_t>(nts - state))
                      : 0;
      const uint64_t headroom =
          static_cast<uint64_t>(config_.num_states - 1 - state);
      state = n >= headroom ? config_.num_states - 1
                            : state + static_cast<int>(n);
    } else {
      mispredicted =
          state >= nts
              ? std::min<uint64_t>(n, static_cast<uint64_t>(state - nts + 1))
              : 0;
      state = n >= static_cast<uint64_t>(state) ? 0
                                                : state - static_cast<int>(n);
    }
    return mispredicted;
  }

  /// Current prediction at `site` without updating.
  bool PredictsTaken(size_t site) const {
    NIPO_DCHECK(site < states_.size());
    return states_[site] >= config_.not_taken_states;
  }

  /// Raw state, exposed for tests.
  int state(size_t site) const { return states_[site]; }

  /// Resets all sites to the initial state (models a predictor that lost
  /// its history, e.g. after JIT-compiling a fresh binary).
  void Reset() {
    for (int& s : states_) s = config_.not_taken_states;
  }

 private:
  PredictorConfig config_;
  std::vector<int> states_;
};

}  // namespace nipo
