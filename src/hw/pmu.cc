#include "hw/pmu.h"

#include <bit>
#include <cmath>
#include <sstream>

#include "hw/shared_cache.h"

/// \file pmu.cc
/// Counter-vector arithmetic and formatting, the HwConfig presets
/// (XeonE5_2630v2 and its scaled variant), and Pmu event intake wiring
/// the branch predictor, cache hierarchy and simulated-time model
/// together.

namespace nipo {

PmuCounters PmuCounters::operator-(const PmuCounters& other) const {
  PmuCounters out = *this;
  out.instructions -= other.instructions;
  out.branches -= other.branches;
  out.branches_taken -= other.branches_taken;
  out.branches_not_taken -= other.branches_not_taken;
  out.mispredictions -= other.mispredictions;
  out.taken_mispredictions -= other.taken_mispredictions;
  out.not_taken_mispredictions -= other.not_taken_mispredictions;
  out.l1_accesses -= other.l1_accesses;
  out.l1_misses -= other.l1_misses;
  out.l2_accesses -= other.l2_accesses;
  out.l2_misses -= other.l2_misses;
  out.l3_accesses -= other.l3_accesses;
  out.l3_misses -= other.l3_misses;
  out.prefetch_requests -= other.prefetch_requests;
  out.l3_evictions_caused -= other.l3_evictions_caused;
  out.l3_evictions_suffered -= other.l3_evictions_suffered;
  out.cycles -= other.cycles;
  return out;
}

PmuCounters& PmuCounters::operator+=(const PmuCounters& other) {
  instructions += other.instructions;
  branches += other.branches;
  branches_taken += other.branches_taken;
  branches_not_taken += other.branches_not_taken;
  mispredictions += other.mispredictions;
  taken_mispredictions += other.taken_mispredictions;
  not_taken_mispredictions += other.not_taken_mispredictions;
  l1_accesses += other.l1_accesses;
  l1_misses += other.l1_misses;
  l2_accesses += other.l2_accesses;
  l2_misses += other.l2_misses;
  l3_accesses += other.l3_accesses;
  l3_misses += other.l3_misses;
  prefetch_requests += other.prefetch_requests;
  l3_evictions_caused += other.l3_evictions_caused;
  l3_evictions_suffered += other.l3_evictions_suffered;
  cycles += other.cycles;
  return *this;
}

std::string PmuCounters::ToString() const {
  std::ostringstream out;
  out << "instructions=" << instructions << " branches=" << branches
      << " taken=" << branches_taken << " not_taken=" << branches_not_taken
      << " mispredictions=" << mispredictions
      << " (taken=" << taken_mispredictions
      << ", not_taken=" << not_taken_mispredictions << ")"
      << " L3_accesses=" << l3_accesses << " L3_misses=" << l3_misses
      << " L3_evictions_caused=" << l3_evictions_caused
      << " L3_evictions_suffered=" << l3_evictions_suffered
      << " cycles=" << cycles;
  return out.str();
}

double CycleModel::LoadCycles(MemoryLevel level) const {
  switch (level) {
    case MemoryLevel::kL1:
      return l1_hit_cycles;
    case MemoryLevel::kL2:
      return l2_hit_cycles;
    case MemoryLevel::kL3:
      return l3_hit_cycles;
    case MemoryLevel::kMemory:
      return memory_cycles;
  }
  return memory_cycles;
}

HwConfig HwConfig::XeonE5_2630v2() { return HwConfig{}; }

HwConfig HwConfig::ScaledXeon(uint64_t divisor) {
  NIPO_CHECK(divisor >= 1);
  HwConfig cfg;
  auto scale = [divisor](CacheGeometry g) {
    g.capacity_bytes /= divisor;
    // Keep at least one set per way group.
    const uint64_t min_capacity =
        static_cast<uint64_t>(g.associativity) * g.line_size;
    if (g.capacity_bytes < min_capacity) g.capacity_bytes = min_capacity;
    return g;
  };
  cfg.l1 = scale(cfg.l1);
  cfg.l2 = scale(cfg.l2);
  cfg.l3 = scale(cfg.l3);
  return cfg;
}

HwConfig HwConfig::WithPredictor(PredictorConfig predictor) {
  HwConfig cfg;
  cfg.predictor = predictor;
  return cfg;
}

Pmu::Pmu(HwConfig config)
    : config_(config),
      predictor_(config.predictor),
      caches_(config.l1, config.l2, config.l3, config.prefetcher) {
  line_size_ = caches_.line_size();
  line_shift_ = std::has_single_bit(line_size_)
                    ? std::countr_zero(line_size_)
                    : -1;
}

void Pmu::SyncCacheStats(PmuCounters* c) const {
  const CacheStats delta = caches_.stats() - cache_baseline_;
  c->l1_accesses = delta.l1_accesses;
  c->l1_misses = delta.l1_misses;
  c->l2_accesses = delta.l2_accesses;
  c->l2_misses = delta.l2_misses;
  c->l3_accesses = delta.l3_accesses;
  c->l3_misses = delta.l3_misses;
  c->prefetch_requests = delta.prefetch_requests;
}

PmuCounters Pmu::Read() const {
  PmuCounters out = counters_;
  SyncCacheStats(&out);
  if (shared_l3_ != nullptr) {
    const SharedCacheDomain::OwnerStats& s = shared_l3_->stats(shared_owner_);
    out.l3_evictions_caused =
        s.evictions_caused - shared_evictions_caused_base_;
    out.l3_evictions_suffered =
        s.evictions_suffered - shared_evictions_suffered_base_;
  }
  // Price the event totals through the cycle model. Pricing once at read
  // time (instead of accumulating a running double per event) is what
  // keeps scalar and batched reporting cycle-identical by construction.
  const CycleModel& m = config_.cycle_model;
  const double cycles =
      m.cycles_per_instruction * static_cast<double>(plain_instructions_) +
      m.branch_cycles * static_cast<double>(counters_.branches) +
      m.misprediction_penalty * static_cast<double>(counters_.mispredictions) +
      m.l1_hit_cycles * static_cast<double>(loads_served_[0]) +
      m.l2_hit_cycles * static_cast<double>(loads_served_[1]) +
      m.l3_hit_cycles * static_cast<double>(loads_served_[2]) +
      m.memory_cycles * static_cast<double>(loads_served_[3]) +
      charged_cycles_;
  out.cycles = static_cast<uint64_t>(std::llround(cycles));
  return out;
}

void Pmu::ResetCounters() {
  counters_ = PmuCounters{};
  plain_instructions_ = 0;
  for (uint64_t& l : loads_served_) l = 0;
  charged_cycles_ = 0.0;
  cache_baseline_ = caches_.stats();
  if (shared_l3_ != nullptr) {
    const SharedCacheDomain::OwnerStats& s = shared_l3_->stats(shared_owner_);
    shared_evictions_caused_base_ = s.evictions_caused;
    shared_evictions_suffered_base_ = s.evictions_suffered;
  }
}

void Pmu::ResetMachine() {
  ResetCounters();
  predictor_.Reset();
  // Clears the private hierarchy only; a shared domain belongs to the
  // workload, not to one machine, and is cleared by its owner.
  caches_.Clear();
  cache_baseline_ = CacheStats{};
}

void Pmu::AttachSharedL3(SharedCacheDomain* domain, uint32_t owner) {
  caches_.AttachSharedL3(domain, owner);
  shared_l3_ = domain;
  shared_owner_ = owner;
  shared_evictions_caused_base_ = 0;
  shared_evictions_suffered_base_ = 0;
  if (domain != nullptr) {
    const SharedCacheDomain::OwnerStats& s = domain->stats(owner);
    shared_evictions_caused_base_ = s.evictions_caused;
    shared_evictions_suffered_base_ = s.evictions_suffered;
  }
}

uint64_t Pmu::SharedL3OccupancyLines() const {
  return shared_l3_ != nullptr ? shared_l3_->stats(shared_owner_).occupancy_lines
                               : 0;
}

uint64_t Pmu::SharedL3PeakOccupancyLines() const {
  return shared_l3_ != nullptr
             ? shared_l3_->stats(shared_owner_).peak_occupancy_lines
             : 0;
}

void Pmu::OnSequentialLoads(const void* base, uint32_t width,
                            uint64_t count) {
  if (count == 0) return;
  NIPO_DCHECK(width > 0);
  const uint64_t addr = reinterpret_cast<uint64_t>(base);
  if (reporting_mode_ == ReportingMode::kScalar) {
    for (uint64_t i = 0; i < count; ++i) {
      OnLoadAddr(addr + i * width, width);
    }
    return;
  }
  counters_.instructions += count;
  if (line_size_ % width == 0 && addr % width == 0) {
    // Aligned elements never straddle lines: the run touches each line in
    // [first, last] in a contiguous burst. The first touch of a line runs
    // the hierarchy; every further touch of the same line is the certain
    // L1 hit a scalar replay would produce (nothing intervenes between
    // the touches), so it is booked arithmetically.
    const uint64_t first = LineOf(addr);
    const uint64_t last = LineOf(addr + count * width - 1);
    for (uint64_t l = first; l <= last; ++l) {
      ++loads_served_[static_cast<int>(caches_.AccessLine(l))];
    }
    const uint64_t coalesced = count - (last - first + 1);
    loads_served_[static_cast<int>(MemoryLevel::kL1)] += coalesced;
    caches_.CountCoalescedL1Hits(coalesced);
    return;
  }
  // Unaligned / line-straddling elements (e.g. 24-byte hash-table slots):
  // walk the touched lines per element, still skipping the hierarchy for
  // immediate same-line repeats. Matching the scalar path, only an
  // element's *first* line prices its load; continuation lines of a
  // straddling element update cache statistics but cost no load cycles
  // (CacheHierarchy::Access returns the first line's serving level).
  uint64_t prev_line = ~uint64_t{0};
  uint64_t coalesced = 0;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t a = addr + i * width;
    const uint64_t first = LineOf(a);
    const uint64_t last = LineOf(a + width - 1);
    if (first == prev_line) {
      ++coalesced;
      ++loads_served_[static_cast<int>(MemoryLevel::kL1)];
    } else {
      ++loads_served_[static_cast<int>(caches_.AccessLine(first))];
    }
    for (uint64_t l = first + 1; l <= last; ++l) {
      caches_.AccessLine(l);
    }
    prev_line = last;
  }
  caches_.CountCoalescedL1Hits(coalesced);
}

void Pmu::OnGatherLoads(const void* base, uint32_t width,
                        const uint32_t* indices, size_t count) {
  if (count == 0) return;
  NIPO_DCHECK(width > 0);
  const uint64_t addr = reinterpret_cast<uint64_t>(base);
  if (reporting_mode_ == ReportingMode::kScalar) {
    for (size_t i = 0; i < count; ++i) {
      OnLoadAddr(addr + static_cast<uint64_t>(indices[i]) * width, width);
    }
    return;
  }
  counters_.instructions += count;
  // Width-dividing-line gathers (every column type) cannot straddle, so
  // the inner loop reduces to one line check per element.
  if (line_size_ % width == 0 && addr % width == 0) {
    uint64_t prev_line = ~uint64_t{0};
    uint64_t coalesced = 0;
    for (size_t i = 0; i < count; ++i) {
      const uint64_t l =
          LineOf(addr + static_cast<uint64_t>(indices[i]) * width);
      if (l == prev_line) {
        ++coalesced;
      } else {
        ++loads_served_[static_cast<int>(caches_.AccessLine(l))];
        prev_line = l;
      }
    }
    loads_served_[static_cast<int>(MemoryLevel::kL1)] += coalesced;
    caches_.CountCoalescedL1Hits(coalesced);
    return;
  }
  uint64_t prev_line = ~uint64_t{0};
  uint64_t coalesced = 0;
  for (size_t i = 0; i < count; ++i) {
    const uint64_t a = addr + static_cast<uint64_t>(indices[i]) * width;
    const uint64_t first = LineOf(a);
    const uint64_t last = LineOf(a + width - 1);
    if (first == prev_line) {
      ++coalesced;
      ++loads_served_[static_cast<int>(MemoryLevel::kL1)];
    } else {
      ++loads_served_[static_cast<int>(caches_.AccessLine(first))];
    }
    for (uint64_t l = first + 1; l <= last; ++l) {
      caches_.AccessLine(l);
    }
    prev_line = last;
  }
  caches_.CountCoalescedL1Hits(coalesced);
}

double Pmu::ToMilliseconds(const PmuCounters& counters) const {
  const double cycles_per_msec = config_.cycle_model.frequency_ghz * 1e6;
  return static_cast<double>(counters.cycles) / cycles_per_msec;
}

}  // namespace nipo
