#include "hw/pmu.h"

#include <cmath>
#include <sstream>

/// \file pmu.cc
/// Counter-vector arithmetic and formatting, the HwConfig presets
/// (XeonE5_2630v2 and its scaled variant), and Pmu event intake wiring
/// the branch predictor, cache hierarchy and simulated-time model
/// together.

namespace nipo {

PmuCounters PmuCounters::operator-(const PmuCounters& other) const {
  PmuCounters out = *this;
  out.instructions -= other.instructions;
  out.branches -= other.branches;
  out.branches_taken -= other.branches_taken;
  out.branches_not_taken -= other.branches_not_taken;
  out.mispredictions -= other.mispredictions;
  out.taken_mispredictions -= other.taken_mispredictions;
  out.not_taken_mispredictions -= other.not_taken_mispredictions;
  out.l1_accesses -= other.l1_accesses;
  out.l1_misses -= other.l1_misses;
  out.l2_accesses -= other.l2_accesses;
  out.l2_misses -= other.l2_misses;
  out.l3_accesses -= other.l3_accesses;
  out.l3_misses -= other.l3_misses;
  out.prefetch_requests -= other.prefetch_requests;
  out.cycles -= other.cycles;
  return out;
}

PmuCounters& PmuCounters::operator+=(const PmuCounters& other) {
  instructions += other.instructions;
  branches += other.branches;
  branches_taken += other.branches_taken;
  branches_not_taken += other.branches_not_taken;
  mispredictions += other.mispredictions;
  taken_mispredictions += other.taken_mispredictions;
  not_taken_mispredictions += other.not_taken_mispredictions;
  l1_accesses += other.l1_accesses;
  l1_misses += other.l1_misses;
  l2_accesses += other.l2_accesses;
  l2_misses += other.l2_misses;
  l3_accesses += other.l3_accesses;
  l3_misses += other.l3_misses;
  prefetch_requests += other.prefetch_requests;
  cycles += other.cycles;
  return *this;
}

std::string PmuCounters::ToString() const {
  std::ostringstream out;
  out << "instructions=" << instructions << " branches=" << branches
      << " taken=" << branches_taken << " not_taken=" << branches_not_taken
      << " mispredictions=" << mispredictions
      << " (taken=" << taken_mispredictions
      << ", not_taken=" << not_taken_mispredictions << ")"
      << " L3_accesses=" << l3_accesses << " L3_misses=" << l3_misses
      << " cycles=" << cycles;
  return out.str();
}

double CycleModel::LoadCycles(MemoryLevel level) const {
  switch (level) {
    case MemoryLevel::kL1:
      return l1_hit_cycles;
    case MemoryLevel::kL2:
      return l2_hit_cycles;
    case MemoryLevel::kL3:
      return l3_hit_cycles;
    case MemoryLevel::kMemory:
      return memory_cycles;
  }
  return memory_cycles;
}

HwConfig HwConfig::XeonE5_2630v2() { return HwConfig{}; }

HwConfig HwConfig::ScaledXeon(uint64_t divisor) {
  NIPO_CHECK(divisor >= 1);
  HwConfig cfg;
  auto scale = [divisor](CacheGeometry g) {
    g.capacity_bytes /= divisor;
    // Keep at least one set per way group.
    const uint64_t min_capacity =
        static_cast<uint64_t>(g.associativity) * g.line_size;
    if (g.capacity_bytes < min_capacity) g.capacity_bytes = min_capacity;
    return g;
  };
  cfg.l1 = scale(cfg.l1);
  cfg.l2 = scale(cfg.l2);
  cfg.l3 = scale(cfg.l3);
  return cfg;
}

HwConfig HwConfig::WithPredictor(PredictorConfig predictor) {
  HwConfig cfg;
  cfg.predictor = predictor;
  return cfg;
}

Pmu::Pmu(HwConfig config)
    : config_(config),
      predictor_(config.predictor),
      caches_(config.l1, config.l2, config.l3, config.prefetcher) {}

void Pmu::SyncCacheStats(PmuCounters* c) const {
  const CacheStats delta = caches_.stats() - cache_baseline_;
  c->l1_accesses = delta.l1_accesses;
  c->l1_misses = delta.l1_misses;
  c->l2_accesses = delta.l2_accesses;
  c->l2_misses = delta.l2_misses;
  c->l3_accesses = delta.l3_accesses;
  c->l3_misses = delta.l3_misses;
  c->prefetch_requests = delta.prefetch_requests;
}

PmuCounters Pmu::Read() const {
  PmuCounters out = counters_;
  SyncCacheStats(&out);
  out.cycles = static_cast<uint64_t>(std::llround(cycle_acc_));
  return out;
}

void Pmu::ResetCounters() {
  counters_ = PmuCounters{};
  cycle_acc_ = 0.0;
  cache_baseline_ = caches_.stats();
}

void Pmu::ResetMachine() {
  counters_ = PmuCounters{};
  cycle_acc_ = 0.0;
  predictor_.Reset();
  caches_.Clear();
  cache_baseline_ = CacheStats{};
}

double Pmu::ToMilliseconds(const PmuCounters& counters) const {
  const double cycles_per_msec = config_.cycle_model.frequency_ghz * 1e6;
  return static_cast<double>(counters.cycles) / cycles_per_msec;
}

}  // namespace nipo
