#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/cache.h"

/// \file shared_cache.h
/// Shared last-level cache with per-owner occupancy accounting.
///
/// The paper's evaluation machine has per-core L1/L2 but one 15 MB L3
/// shared by every core (Section 2.1), so concurrent queries compete for
/// L3 capacity: a scan streaming a large column evicts the lines a
/// co-running join was reusing, and the victim's L3 miss counter — one of
/// the four monitored events — goes up through no fault of its own. A
/// SharedCacheDomain models exactly that: one CacheLevel whose ways carry
/// an owner tag, with per-owner hit/miss/occupancy gauges and cross-owner
/// eviction counters. Query machines (Pmu) keep their private L1/L2 and
/// route L3 fills through the domain via Pmu::AttachSharedL3.
///
/// Determinism: the domain is intentionally unsynchronized, like every
/// other simulated machine component. Contended workload execution
/// serializes quanta in event order (exec/workload_driver.cc,
/// "contention mode"), so the interleaving of owners' accesses — and
/// therefore every counter — is a pure function of the schedule.

namespace nipo {

/// \brief One shared cache level tracking which owner's lines occupy it.
class SharedCacheDomain {
 public:
  /// Per-owner view of the domain. Hits/misses/evictions are monotone
  /// counters; occupancy_lines is a gauge (rises on fills and ownership
  /// transfers, falls on evictions and transfers away).
  struct OwnerStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions_caused = 0;  ///< other owners' lines it displaced
    uint64_t evictions_suffered = 0;  ///< its lines displaced by others
    uint64_t self_evictions = 0;      ///< its lines displaced by itself
    uint64_t occupancy_lines = 0;     ///< lines it owns right now
    uint64_t peak_occupancy_lines = 0;
  };

  explicit SharedCacheDomain(CacheGeometry geometry);

  /// Adds an owner and returns its id (dense, starting at 0).
  uint32_t RegisterOwner(std::string name);

  /// Demand/prefetch probe-and-fill for `owner`. Returns true on hit.
  /// A hit on another owner's line transfers ownership to the accessor
  /// (the line is re-tagged, occupancy gauges move, no eviction is
  /// charged); a miss that displaces another owner's line charges one
  /// eviction to the aggressor (`evictions_caused`) and one to the
  /// victim (`evictions_suffered`).
  bool AccessFill(uint32_t owner, uint64_t line_addr);

  size_t num_owners() const { return owners_.size(); }
  const OwnerStats& stats(uint32_t owner) const {
    NIPO_DCHECK(owner < owners_.size());
    return owners_[owner];
  }
  const std::string& owner_name(uint32_t owner) const {
    NIPO_DCHECK(owner < names_.size());
    return names_[owner];
  }

  /// Sum of the per-owner occupancy gauges. The accounting invariant —
  /// checked by the contention tests after every quantum — is that this
  /// equals level().occupied_lines() at all times.
  uint64_t total_occupancy_lines() const;

  /// Total lines ever displaced from the level. Invariant: equals the
  /// sum over owners of evictions_suffered + self_evictions (every
  /// displaced line is charged to exactly one owner).
  uint64_t lines_displaced() const { return lines_displaced_; }

  /// Drops contents and all per-owner statistics; owner registrations
  /// survive.
  void Clear();

  const CacheLevel& level() const { return level_; }
  uint64_t capacity_lines() const { return capacity_lines_; }
  uint32_t line_size() const { return level_.geometry().line_size; }

 private:
  CacheLevel level_;
  uint64_t capacity_lines_;
  std::vector<OwnerStats> owners_;
  std::vector<std::string> names_;
  uint64_t lines_displaced_ = 0;
};

}  // namespace nipo
