#include "hw/cache.h"

#include <algorithm>
#include <bit>

#include "hw/shared_cache.h"

/// \file cache.cc
/// Simulated set-associative LRU cache levels and the inclusive
/// L1/L2/L3-plus-memory hierarchy with next-line prefetch, counting
/// accesses and misses per level.

namespace nipo {

std::string_view MemoryLevelToString(MemoryLevel level) {
  switch (level) {
    case MemoryLevel::kL1:
      return "L1";
    case MemoryLevel::kL2:
      return "L2";
    case MemoryLevel::kL3:
      return "L3";
    case MemoryLevel::kMemory:
      return "memory";
  }
  return "unknown";
}

CacheLevel::CacheLevel(CacheGeometry geometry)
    : geometry_(geometry),
      num_sets_(geometry.num_sets()),
      ways_(geometry.associativity) {
  NIPO_CHECK(geometry_.line_size > 0);
  NIPO_CHECK(geometry_.associativity > 0);
  NIPO_CHECK(num_sets_ > 0);
  // Normalize the set count to a power of two so SetIndex can mask instead
  // of `%`, re-deriving the associativity from the (unchanged) line
  // count: e.g. the Xeon L3's 245760 lines organize as 12288 sets x 20
  // ways in hardware and as 16384 sets x 15 ways here — same bytes, same
  // hashed placement randomness, mask-indexable. Of the two neighboring
  // powers of two, keep the one retaining the most lines; whenever the
  // line count divides one of them (every geometry in this repository,
  // ties prefer the larger set count / shorter way scans) capacity is
  // preserved exactly, and otherwise at most a way's worth of lines is
  // dropped — the same flooring character CacheGeometry::num_sets()
  // already has for non-dividing associativities.
  if (!std::has_single_bit(num_sets_)) {
    const uint64_t lines = geometry.num_lines();
    const uint64_t down = std::bit_floor(num_sets_);
    const uint64_t up = std::bit_ceil(num_sets_);
    num_sets_ = lines - lines % up >= lines - lines % down ? up : down;
    ways_ = static_cast<uint32_t>(lines / num_sets_);
  }
  set_mask_ = num_sets_ - 1;
  slots_.resize(num_sets_ * ways_);
  mru_.assign(num_sets_, 0);
}

bool CacheLevel::Lookup(uint64_t line_addr) {
  const size_t set_index = SetIndex(line_addr);
  Way* set = &slots_[set_index * ways_];
  // MRU early-out: repeated touches of a hot line (hash-table slots, the
  // current scan line) resolve in one compare.
  const uint32_t mru = mru_[set_index];
  if (set[mru].tag == line_addr) {
    set[mru].lru_stamp = ++tick_;
    ++hits_;
    return true;
  }
  for (uint32_t w = 0; w < ways_; ++w) {
    if (set[w].tag == line_addr) {
      set[w].lru_stamp = ++tick_;
      mru_[set_index] = w;
      ++hits_;
      return true;
    }
  }
  ++misses_;
  return false;
}

void CacheLevel::Insert(uint64_t line_addr, bool prefetched) {
  const size_t set_index = SetIndex(line_addr);
  Way* set = &slots_[set_index * ways_];
  Way* victim = &set[0];
  for (uint32_t w = 0; w < ways_; ++w) {
    if (set[w].tag == line_addr) {
      set[w].lru_stamp = ++tick_;
      mru_[set_index] = w;
      return;  // already resident; keep its existing mark
    }
    if (set[w].tag == kEmptyTag) {
      victim = &set[w];
      break;
    }
    if (set[w].lru_stamp < victim->lru_stamp) victim = &set[w];
  }
  victim->tag = line_addr;
  victim->lru_stamp = ++tick_;
  victim->prefetched = prefetched;
  mru_[set_index] = static_cast<uint32_t>(victim - set);
}

bool CacheLevel::AccessFill(uint64_t line_addr, bool* was_prefetched) {
  const size_t set_index = SetIndex(line_addr);
  Way* set = &slots_[set_index * ways_];
  const uint32_t mru = mru_[set_index];
  Way* hit = set[mru].tag == line_addr ? &set[mru] : nullptr;
  Way* victim = &set[0];
  if (hit == nullptr) {
    for (uint32_t w = 0; w < ways_; ++w) {
      if (set[w].tag == line_addr) {
        hit = &set[w];
        mru_[set_index] = w;
        break;
      }
      if (set[w].tag == kEmptyTag) {
        victim = &set[w];
        break;
      }
      if (set[w].lru_stamp < victim->lru_stamp) victim = &set[w];
    }
  }
  if (hit != nullptr) {
    hit->lru_stamp = ++tick_;
    ++hits_;
    if (was_prefetched != nullptr) {
      *was_prefetched = hit->prefetched;
      hit->prefetched = false;
    }
    return true;
  }
  ++misses_;
  victim->tag = line_addr;
  victim->lru_stamp = ++tick_;
  victim->prefetched = false;
  mru_[set_index] = static_cast<uint32_t>(victim - set);
  return false;
}

CacheLevel::OwnedAccess CacheLevel::AccessFillOwned(uint64_t line_addr,
                                                    uint32_t owner) {
  const size_t set_index = SetIndex(line_addr);
  Way* set = &slots_[set_index * ways_];
  const uint32_t mru = mru_[set_index];
  Way* hit = set[mru].tag == line_addr ? &set[mru] : nullptr;
  Way* victim = &set[0];
  if (hit == nullptr) {
    for (uint32_t w = 0; w < ways_; ++w) {
      if (set[w].tag == line_addr) {
        hit = &set[w];
        mru_[set_index] = w;
        break;
      }
      if (set[w].tag == kEmptyTag) {
        victim = &set[w];
        break;
      }
      if (set[w].lru_stamp < victim->lru_stamp) victim = &set[w];
    }
  }
  OwnedAccess out;
  if (hit != nullptr) {
    hit->lru_stamp = ++tick_;
    ++hits_;
    out.hit = true;
    out.prev_owner = hit->owner;
    hit->owner = owner;  // last accessor owns (no prefetched-mark change,
                         // matching AccessFill without was_prefetched)
    return out;
  }
  ++misses_;
  if (victim->tag != kEmptyTag) {
    out.displaced = true;
    out.victim_owner = victim->owner;
  }
  victim->tag = line_addr;
  victim->lru_stamp = ++tick_;
  victim->prefetched = false;
  victim->owner = owner;
  mru_[set_index] = static_cast<uint32_t>(victim - set);
  return out;
}

uint64_t CacheLevel::occupied_lines() const {
  uint64_t n = 0;
  for (const Way& w : slots_) {
    if (w.tag != kEmptyTag) ++n;
  }
  return n;
}

bool CacheLevel::FillIfAbsent(uint64_t line_addr) {
  const size_t set_index = SetIndex(line_addr);
  Way* set = &slots_[set_index * ways_];
  if (set[mru_[set_index]].tag == line_addr) return true;
  Way* victim = &set[0];
  for (uint32_t w = 0; w < ways_; ++w) {
    if (set[w].tag == line_addr) return true;
    if (set[w].tag == kEmptyTag) {
      victim = &set[w];
      break;
    }
    if (set[w].lru_stamp < victim->lru_stamp) victim = &set[w];
  }
  victim->tag = line_addr;
  victim->lru_stamp = ++tick_;
  victim->prefetched = true;
  mru_[set_index] = static_cast<uint32_t>(victim - set);
  return false;
}

bool CacheLevel::Contains(uint64_t line_addr) const {
  const size_t set_index = SetIndex(line_addr);
  const Way* set = &slots_[set_index * ways_];
  if (set[mru_[set_index]].tag == line_addr) return true;
  for (uint32_t w = 0; w < ways_; ++w) {
    if (set[w].tag == line_addr) return true;
  }
  return false;
}

void CacheLevel::Clear() {
  for (Way& w : slots_) w = Way{};
  std::fill(mru_.begin(), mru_.end(), 0u);
  tick_ = 0;
}

CacheStats& CacheStats::operator-=(const CacheStats& other) {
  l1_accesses -= other.l1_accesses;
  l1_misses -= other.l1_misses;
  l2_accesses -= other.l2_accesses;
  l2_misses -= other.l2_misses;
  l3_accesses -= other.l3_accesses;
  l3_misses -= other.l3_misses;
  prefetch_requests -= other.prefetch_requests;
  return *this;
}

CacheStats CacheStats::operator-(const CacheStats& other) const {
  CacheStats out = *this;
  out -= other;
  return out;
}

CacheHierarchy::CacheHierarchy(CacheGeometry l1, CacheGeometry l2,
                               CacheGeometry l3, bool enable_prefetcher)
    : l1_(l1), l2_(l2), l3_(l3), prefetcher_enabled_(enable_prefetcher) {
  NIPO_CHECK(l1.line_size == l2.line_size && l2.line_size == l3.line_size);
}

MemoryLevel CacheHierarchy::Access(uint64_t addr, uint32_t width) {
  const uint32_t line = line_size();
  const uint64_t first_line = addr / line;
  const uint64_t last_line = (addr + (width > 0 ? width - 1 : 0)) / line;
  MemoryLevel deepest = AccessLine(first_line);
  for (uint64_t l = first_line + 1; l <= last_line; ++l) {
    AccessLine(l);
  }
  return deepest;
}

MemoryLevel CacheHierarchy::AccessLine(uint64_t line_addr) {
  return DemandAccess(line_addr);
}

// Each level's probe-and-fill runs as one fused set walk (AccessFill /
// FillIfAbsent). The fills therefore execute slightly earlier relative to
// *other* levels' operations than in a naive lookup-then-insert spelling,
// which is unobservable: a level's LRU clock advances only on its own
// operations, and the per-level operation order is unchanged.
MemoryLevel CacheHierarchy::DemandAccess(uint64_t line_addr) {
  ++stats_.l1_accesses;
  if (l1_.AccessFill(line_addr)) {
    return MemoryLevel::kL1;
  }
  ++stats_.l1_misses;
  ++stats_.l2_accesses;
  MemoryLevel served;
  bool was_prefetched = false;
  if (l2_.AccessFill(line_addr, &was_prefetched)) {
    served = MemoryLevel::kL2;
    // First demand use of a prefetched line: the stream prefetcher keeps
    // running ahead (stream continuation).
    if (prefetcher_enabled_ && was_prefetched) {
      Prefetch(line_addr + 1);
    }
  } else {
    ++stats_.l2_misses;
    ++stats_.l3_accesses;
    if (AccessL3(line_addr)) {
      served = MemoryLevel::kL3;
    } else {
      ++stats_.l3_misses;
      served = MemoryLevel::kMemory;
    }
    // L2 demand miss: the next-line prefetcher kicks in (Section 2.2.2 /
    // 3.1 of the paper: prefetch requests count as L3 accesses).
    if (prefetcher_enabled_) {
      Prefetch(line_addr + 1);
    }
  }
  return served;
}

void CacheHierarchy::Prefetch(uint64_t line_addr) {
  if (l2_.FillIfAbsent(line_addr)) {
    return;  // already resident; hardware squashes the request
  }
  ++stats_.prefetch_requests;
  ++stats_.l3_accesses;
  if (!AccessL3(line_addr)) {
    ++stats_.l3_misses;
  }
}

bool CacheHierarchy::AccessL3(uint64_t line_addr) {
  if (shared_l3_ != nullptr) {
    return shared_l3_->AccessFill(shared_owner_, line_addr);
  }
  return l3_.AccessFill(line_addr);
}

void CacheHierarchy::Clear() {
  l1_.Clear();
  l2_.Clear();
  l3_.Clear();
  l1_.ResetStats();
  l2_.ResetStats();
  l3_.ResetStats();
  stats_ = CacheStats{};
}

}  // namespace nipo
