#include "hw/cache.h"

/// \file cache.cc
/// Simulated set-associative LRU cache levels and the inclusive
/// L1/L2/L3-plus-memory hierarchy with next-line prefetch, counting
/// accesses and misses per level.

namespace nipo {

std::string_view MemoryLevelToString(MemoryLevel level) {
  switch (level) {
    case MemoryLevel::kL1:
      return "L1";
    case MemoryLevel::kL2:
      return "L2";
    case MemoryLevel::kL3:
      return "L3";
    case MemoryLevel::kMemory:
      return "memory";
  }
  return "unknown";
}

CacheLevel::CacheLevel(CacheGeometry geometry)
    : geometry_(geometry),
      num_sets_(geometry.num_sets()),
      ways_(geometry.associativity) {
  NIPO_CHECK(geometry_.line_size > 0);
  NIPO_CHECK(geometry_.associativity > 0);
  NIPO_CHECK(num_sets_ > 0);
  slots_.resize(num_sets_ * ways_);
}

bool CacheLevel::Lookup(uint64_t line_addr) {
  Way* set = &slots_[SetIndex(line_addr) * ways_];
  for (uint32_t w = 0; w < ways_; ++w) {
    if (set[w].tag == line_addr) {
      set[w].lru_stamp = ++tick_;
      ++hits_;
      return true;
    }
  }
  ++misses_;
  return false;
}

void CacheLevel::Insert(uint64_t line_addr, bool prefetched) {
  Way* set = &slots_[SetIndex(line_addr) * ways_];
  Way* victim = &set[0];
  for (uint32_t w = 0; w < ways_; ++w) {
    if (set[w].tag == line_addr) {
      set[w].lru_stamp = ++tick_;
      return;  // already resident; keep its existing mark
    }
    if (set[w].tag == kEmptyTag) {
      victim = &set[w];
      break;
    }
    if (set[w].lru_stamp < victim->lru_stamp) victim = &set[w];
  }
  victim->tag = line_addr;
  victim->lru_stamp = ++tick_;
  victim->prefetched = prefetched;
}

bool CacheLevel::ConsumePrefetchFlag(uint64_t line_addr) {
  Way* set = &slots_[SetIndex(line_addr) * ways_];
  for (uint32_t w = 0; w < ways_; ++w) {
    if (set[w].tag == line_addr) {
      const bool was = set[w].prefetched;
      set[w].prefetched = false;
      return was;
    }
  }
  return false;
}

bool CacheLevel::Contains(uint64_t line_addr) const {
  const Way* set = &slots_[SetIndex(line_addr) * ways_];
  for (uint32_t w = 0; w < ways_; ++w) {
    if (set[w].tag == line_addr) return true;
  }
  return false;
}

void CacheLevel::Clear() {
  for (Way& w : slots_) w = Way{};
  tick_ = 0;
}

CacheStats& CacheStats::operator-=(const CacheStats& other) {
  l1_accesses -= other.l1_accesses;
  l1_misses -= other.l1_misses;
  l2_accesses -= other.l2_accesses;
  l2_misses -= other.l2_misses;
  l3_accesses -= other.l3_accesses;
  l3_misses -= other.l3_misses;
  prefetch_requests -= other.prefetch_requests;
  return *this;
}

CacheStats CacheStats::operator-(const CacheStats& other) const {
  CacheStats out = *this;
  out -= other;
  return out;
}

CacheHierarchy::CacheHierarchy(CacheGeometry l1, CacheGeometry l2,
                               CacheGeometry l3, bool enable_prefetcher)
    : l1_(l1), l2_(l2), l3_(l3), prefetcher_enabled_(enable_prefetcher) {
  NIPO_CHECK(l1.line_size == l2.line_size && l2.line_size == l3.line_size);
}

MemoryLevel CacheHierarchy::Access(uint64_t addr, uint32_t width) {
  const uint32_t line = line_size();
  const uint64_t first_line = addr / line;
  const uint64_t last_line = (addr + (width > 0 ? width - 1 : 0)) / line;
  MemoryLevel deepest = AccessLine(first_line);
  for (uint64_t l = first_line + 1; l <= last_line; ++l) {
    AccessLine(l);
  }
  return deepest;
}

MemoryLevel CacheHierarchy::AccessLine(uint64_t line_addr) {
  return DemandAccess(line_addr);
}

MemoryLevel CacheHierarchy::DemandAccess(uint64_t line_addr) {
  ++stats_.l1_accesses;
  if (l1_.Lookup(line_addr)) {
    return MemoryLevel::kL1;
  }
  ++stats_.l1_misses;
  ++stats_.l2_accesses;
  MemoryLevel served;
  if (l2_.Lookup(line_addr)) {
    served = MemoryLevel::kL2;
    // First demand use of a prefetched line: the stream prefetcher keeps
    // running ahead (stream continuation).
    if (prefetcher_enabled_ && l2_.ConsumePrefetchFlag(line_addr)) {
      Prefetch(line_addr + 1);
    }
  } else {
    ++stats_.l2_misses;
    ++stats_.l3_accesses;
    if (l3_.Lookup(line_addr)) {
      served = MemoryLevel::kL3;
    } else {
      ++stats_.l3_misses;
      served = MemoryLevel::kMemory;
      l3_.Insert(line_addr);
    }
    l2_.Insert(line_addr);
    // L2 demand miss: the next-line prefetcher kicks in (Section 2.2.2 /
    // 3.1 of the paper: prefetch requests count as L3 accesses).
    if (prefetcher_enabled_) {
      Prefetch(line_addr + 1);
    }
  }
  l1_.Insert(line_addr);
  return served;
}

void CacheHierarchy::Prefetch(uint64_t line_addr) {
  if (l2_.Contains(line_addr)) {
    return;  // already resident; hardware squashes the request
  }
  ++stats_.prefetch_requests;
  ++stats_.l3_accesses;
  if (!l3_.Lookup(line_addr)) {
    ++stats_.l3_misses;
    l3_.Insert(line_addr);
  }
  l2_.Insert(line_addr, /*prefetched=*/true);
}

void CacheHierarchy::Clear() {
  l1_.Clear();
  l2_.Clear();
  l3_.Clear();
  l1_.ResetStats();
  l2_.ResetStats();
  l3_.ResetStats();
  stats_ = CacheStats{};
}

}  // namespace nipo
