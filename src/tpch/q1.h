#pragma once

#include "common/date.h"
#include "exec/hash_aggregate.h"
#include "storage/table.h"

/// \file q1.h
/// TPC-H Query 1 (pricing summary report), the canonical scan-aggregate
/// workload, adapted to this engine's integer encodings:
///
///   SELECT l_returnflag, l_linestatus,
///          sum(l_quantity), sum(l_extendedprice), count(*)
///   FROM lineitem
///   WHERE l_shipdate <= DATE '1998-12-01' - 90 days
///   GROUP BY l_returnflag, l_linestatus
///
/// returnflag is encoded A=0 / N=1 / R=2 and linestatus F=0 / O=1; the
/// group key is returnflag * 2 + linestatus. The canonical parameter
/// (DELTA = 90) keeps ~95+% of lineitem, making Q1 the high-selectivity
/// counterpoint to Q6's low-selectivity scans.

namespace nipo {

/// \brief Q1 group key encoding.
int64_t Q1GroupKey(int32_t returnflag, int32_t linestatus);

/// \brief Decodes a group key back to (returnflag, linestatus).
std::pair<int32_t, int32_t> Q1DecodeGroup(int64_t group);

/// \brief Builds the Q1 aggregation spec against `lineitem` with the
/// canonical shipdate cutoff (1998-12-01 minus `delta_days`).
///
/// Note: the engine's group column must be materialized; this helper
/// requires the caller to have added a combined "l_q1group" column via
/// AddQ1GroupColumn (done once per table).
HashAggregateSpec MakeQ1Spec(const Table& lineitem, int32_t delta_days = 90);

/// \brief Materializes the combined group column "l_q1group"
/// (returnflag * 2 + linestatus) on the table if not yet present.
Status AddQ1GroupColumn(Table* lineitem);

/// \brief Reference evaluation (no PMU) for correctness checks.
Result<HashAggregateResult> ComputeQ1Reference(const Table& lineitem,
                                               int32_t delta_days = 90);

}  // namespace nipo
