#include "tpch/distributions.h"

#include <algorithm>
#include <numeric>

/// \file distributions.cc
/// Whole-row layout transforms for the sortedness experiments: sort by a
/// key column, bounded Knuth shuffle (clustered), full shuffle (random)
/// and the Figure 14 shuffle-distance sweep, applied consistently across
/// every column of the table.

namespace nipo {

namespace {

template <typename T>
void PermuteTyped(Column<T>* column, const std::vector<uint32_t>& perm) {
  const std::vector<T>& old_values = column->mutable_values();
  std::vector<T> next(old_values.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    next[i] = old_values[perm[i]];
  }
  column->mutable_values() = std::move(next);
}

Status CheckPermutation(const std::vector<uint32_t>& perm, size_t n) {
  if (perm.size() != n) {
    return Status::InvalidArgument("permutation size != row count");
  }
  std::vector<bool> seen(n, false);
  for (uint32_t p : perm) {
    if (p >= n || seen[p]) {
      return Status::InvalidArgument("not a permutation");
    }
    seen[p] = true;
  }
  return Status::OK();
}

/// Reads column value `row` as double for ordering purposes.
template <typename T>
double ValueAt(const ColumnBase* col, size_t row) {
  return static_cast<double>((*static_cast<const Column<T>*>(col))[row]);
}

double GenericValueAt(const ColumnBase* col, size_t row) {
  switch (col->type()) {
    case DataType::kInt32:
      return ValueAt<int32_t>(col, row);
    case DataType::kInt64:
      return ValueAt<int64_t>(col, row);
    case DataType::kDouble:
      return ValueAt<double>(col, row);
  }
  return 0.0;
}

}  // namespace

Status ApplyRowPermutation(Table* table, const std::vector<uint32_t>& perm) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  NIPO_RETURN_NOT_OK(CheckPermutation(perm, table->num_rows()));
  for (size_t c = 0; c < table->num_columns(); ++c) {
    NIPO_ASSIGN_OR_RETURN(ColumnBase * col,
                          table->GetMutableColumn(table->column(c)->name()));
    switch (col->type()) {
      case DataType::kInt32:
        PermuteTyped(static_cast<Column<int32_t>*>(col), perm);
        break;
      case DataType::kInt64:
        PermuteTyped(static_cast<Column<int64_t>*>(col), perm);
        break;
      case DataType::kDouble:
        PermuteTyped(static_cast<Column<double>*>(col), perm);
        break;
    }
  }
  return Status::OK();
}

Result<std::vector<uint32_t>> SortPermutation(const Table& table,
                                              const std::string& column) {
  NIPO_ASSIGN_OR_RETURN(const ColumnBase* col, table.GetColumn(column));
  std::vector<uint32_t> perm(table.num_rows());
  std::iota(perm.begin(), perm.end(), 0u);
  std::stable_sort(perm.begin(), perm.end(),
                   [col](uint32_t a, uint32_t b) {
                     return GenericValueAt(col, a) < GenericValueAt(col, b);
                   });
  return perm;
}

Status SortTableBy(Table* table, const std::string& column) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  NIPO_ASSIGN_OR_RETURN(std::vector<uint32_t> perm,
                        SortPermutation(*table, column));
  return ApplyRowPermutation(table, perm);
}

std::vector<uint32_t> RandomPermutation(size_t n, Prng* prng) {
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  for (size_t i = n; i > 1; --i) {
    const size_t j = static_cast<size_t>(prng->NextBounded(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

std::vector<uint32_t> BoundedKnuthShufflePermutation(size_t n,
                                                     size_t max_distance,
                                                     Prng* prng) {
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  if (max_distance == 0 || n < 2) return perm;
  for (size_t i = 0; i + 1 < n; ++i) {
    const size_t window = std::min(max_distance, n - 1 - i);
    const size_t j = i + static_cast<size_t>(prng->NextBounded(window + 1));
    std::swap(perm[i], perm[j]);
  }
  return perm;
}

Status SortAndShuffleWithinWindows(Table* table, const std::string& column,
                                   int64_t window_width, Prng* prng) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  if (window_width <= 0) {
    return Status::InvalidArgument("window_width must be positive");
  }
  NIPO_ASSIGN_OR_RETURN(std::vector<uint32_t> perm,
                        SortPermutation(*table, column));
  NIPO_RETURN_NOT_OK(ApplyRowPermutation(table, perm));
  // Group consecutive rows whose value falls in the same window of the
  // value domain, and Fisher-Yates within each group.
  NIPO_ASSIGN_OR_RETURN(const ColumnBase* col, table->GetColumn(column));
  const size_t n = table->num_rows();
  std::vector<uint32_t> window_perm(n);
  std::iota(window_perm.begin(), window_perm.end(), 0u);
  size_t group_start = 0;
  auto window_of = [&](size_t row) {
    return static_cast<int64_t>(GenericValueAt(col, row)) / window_width;
  };
  for (size_t i = 1; i <= n; ++i) {
    if (i == n || window_of(i) != window_of(group_start)) {
      // Shuffle [group_start, i).
      for (size_t k = i - group_start; k > 1; --k) {
        const size_t j =
            group_start + static_cast<size_t>(prng->NextBounded(k));
        std::swap(window_perm[group_start + k - 1], window_perm[j]);
      }
      group_start = i;
    }
  }
  return ApplyRowPermutation(table, window_perm);
}

std::string_view LayoutToString(Layout layout) {
  switch (layout) {
    case Layout::kSorted:
      return "sorted";
    case Layout::kClustered:
      return "clustered";
    case Layout::kRandom:
      return "random";
  }
  return "unknown";
}

Status ApplyLayout(Table* table, const std::string& column, Layout layout,
                   Prng* prng) {
  switch (layout) {
    case Layout::kSorted:
      return SortTableBy(table, column);
    case Layout::kClustered:
      return SortAndShuffleWithinWindows(table, column, /*window_width=*/30,
                                         prng);
    case Layout::kRandom: {
      if (table == nullptr) return Status::InvalidArgument("null table");
      const std::vector<uint32_t> perm =
          RandomPermutation(table->num_rows(), prng);
      return ApplyRowPermutation(table, perm);
    }
  }
  return Status::InvalidArgument("unknown layout");
}

}  // namespace nipo
