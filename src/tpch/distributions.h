#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/prng.h"
#include "storage/table.h"

/// \file distributions.h
/// Value-distribution transforms for the sortedness experiments (paper
/// Sections 5.4-5.5): the same logical table laid out sorted, clustered
/// (bounded Knuth shuffle), or fully random, plus the "shuffle distance"
/// sweep of Figure 14 (1 tuple .. cache line .. L1 .. L2 .. L3 .. memory).
///
/// All transforms permute *whole rows* (every column consistently), so
/// the relation's content is unchanged -- only its physical order moves.

namespace nipo {

/// \brief Applies `perm` to every column of `table`: row i of the output
/// is row perm[i] of the input. `perm` must be a permutation of
/// [0, num_rows).
Status ApplyRowPermutation(Table* table, const std::vector<uint32_t>& perm);

/// \brief Permutation that sorts the table ascending by `column`
/// (stable). Works for int32/int64/double columns.
Result<std::vector<uint32_t>> SortPermutation(const Table& table,
                                              const std::string& column);

/// \brief Sorts the table in place by `column` (ascending, stable).
Status SortTableBy(Table* table, const std::string& column);

/// \brief Fisher-Yates permutation of n rows (the "random" data set).
std::vector<uint32_t> RandomPermutation(size_t n, Prng* prng);

/// \brief Bounded-distance Knuth shuffle: each row i swaps with a uniform
/// row in [i, min(i + max_distance, n-1)]. max_distance = 0 is the
/// identity; max_distance >= n-1 degenerates to a full Fisher-Yates
/// shuffle. This is the Figure 14 "sortiness" knob: a shuffle distance of
/// one cache line keeps near-perfect locality; a distance beyond L3
/// behaves like random memory access.
std::vector<uint32_t> BoundedKnuthShufflePermutation(size_t n,
                                                     size_t max_distance,
                                                     Prng* prng);

/// \brief Sorts by `column`, then shuffles rows only *within* groups of
/// rows whose column values fall in the same window of `window_width`
/// (e.g. one month of day numbers): the paper's "clustered" data set
/// (Section 5.4, Figure 13b).
Status SortAndShuffleWithinWindows(Table* table, const std::string& column,
                                   int64_t window_width, Prng* prng);

/// \brief The three canonical layouts of Figure 13.
enum class Layout { kSorted, kClustered, kRandom };

std::string_view LayoutToString(Layout layout);

/// \brief Re-lays out the table on `column` per `layout`. kClustered uses
/// a 30-day window (a month, as in the paper).
Status ApplyLayout(Table* table, const std::string& column, Layout layout,
                   Prng* prng);

}  // namespace nipo
