#include "tpch/q1.h"

#include <map>

#include "storage/column_view.h"

/// \file q1.cc
/// TPC-H Q1 helpers: returnflag/linestatus group-key encoding, the
/// derived group column, the Q1 aggregate spec and a reference
/// implementation for verification.

namespace nipo {

int64_t Q1GroupKey(int32_t returnflag, int32_t linestatus) {
  return static_cast<int64_t>(returnflag) * 2 + linestatus;
}

std::pair<int32_t, int32_t> Q1DecodeGroup(int64_t group) {
  return {static_cast<int32_t>(group / 2), static_cast<int32_t>(group % 2)};
}

namespace {

/// Binds a ColumnView over a named column (plain or encoded alike).
Result<ColumnView> BindView(const Table& table, const std::string& column) {
  NIPO_ASSIGN_OR_RETURN(const ColumnBase* col, table.GetColumn(column));
  return ColumnView::Bind(col);
}

}  // namespace

Status AddQ1GroupColumn(Table* lineitem) {
  if (lineitem == nullptr) return Status::InvalidArgument("null table");
  if (lineitem->GetColumn("l_q1group").ok()) {
    return Status::OK();  // already materialized
  }
  NIPO_ASSIGN_OR_RETURN(ColumnView flag, BindView(*lineitem, "l_returnflag"));
  NIPO_ASSIGN_OR_RETURN(ColumnView status,
                        BindView(*lineitem, "l_linestatus"));
  std::vector<int32_t> group(lineitem->num_rows());
  for (size_t i = 0; i < group.size(); ++i) {
    group[i] = static_cast<int32_t>(
        Q1GroupKey(static_cast<int32_t>(flag.ValueAsInt64(i)),
                   static_cast<int32_t>(status.ValueAsInt64(i))));
  }
  return lineitem->AddColumn("l_q1group", std::move(group));
}

HashAggregateSpec MakeQ1Spec(const Table& lineitem, int32_t delta_days) {
  HashAggregateSpec spec;
  spec.table = &lineitem;
  spec.group_column = "l_q1group";
  const int32_t cutoff =
      DateToDayNumber(Date{1998, 12, 1}) - delta_days;
  spec.filters = {
      PredicateSpec{"l_shipdate", CompareOp::kLe,
                    static_cast<double>(cutoff)}};
  spec.aggregates = {AggregateSpec{"l_quantity"},
                     AggregateSpec{"l_extendedprice"}};
  return spec;
}

Result<HashAggregateResult> ComputeQ1Reference(const Table& lineitem,
                                               int32_t delta_days) {
  NIPO_ASSIGN_OR_RETURN(ColumnView flag, BindView(lineitem, "l_returnflag"));
  NIPO_ASSIGN_OR_RETURN(ColumnView status,
                        BindView(lineitem, "l_linestatus"));
  NIPO_ASSIGN_OR_RETURN(ColumnView ship, BindView(lineitem, "l_shipdate"));
  NIPO_ASSIGN_OR_RETURN(ColumnView quantity,
                        BindView(lineitem, "l_quantity"));
  NIPO_ASSIGN_OR_RETURN(ColumnView price,
                        BindView(lineitem, "l_extendedprice"));
  const int32_t cutoff = DateToDayNumber(Date{1998, 12, 1}) - delta_days;

  struct State {
    uint64_t count = 0;
    int64_t sum_quantity = 0;
    int64_t sum_price = 0;
  };
  std::map<int64_t, State> groups;
  HashAggregateResult result;
  result.input_rows = lineitem.num_rows();
  for (size_t i = 0; i < lineitem.num_rows(); ++i) {
    if (ship.ValueAsInt64(i) > cutoff) continue;
    ++result.passed_filter;
    State& state = groups[Q1GroupKey(
        static_cast<int32_t>(flag.ValueAsInt64(i)),
        static_cast<int32_t>(status.ValueAsInt64(i)))];
    ++state.count;
    state.sum_quantity += quantity.ValueAsInt64(i);
    state.sum_price += price.ValueAsInt64(i);
  }
  for (const auto& [group, state] : groups) {
    GroupResult g;
    g.group = group;
    g.count = state.count;
    g.sums = {state.sum_quantity, state.sum_price};
    result.groups.push_back(std::move(g));
  }
  return result;
}

}  // namespace nipo
