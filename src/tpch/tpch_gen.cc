#include "tpch/tpch_gen.h"

#include <algorithm>

/// \file tpch_gen.cc
/// Scaled deterministic lineitem generation: per-order orderdate/lineitem
/// structure, TPC-H value distributions for the columns the experiments
/// read, and assembly into a registered-ready Table.

namespace nipo {

namespace {

struct OrderDraft {
  int32_t orderdate = 0;
  uint32_t num_lineitems = 1;
};

/// Draws the per-order structure: the orderdate schedule and lineitem
/// counts. With clustered_dates, orderdates increase monotonically across
/// the table (bulk-load order); otherwise they are uniform random.
std::vector<OrderDraft> DraftOrders(const TpchConfig& config, Prng* prng) {
  const uint64_t n = config.num_orders();
  const int32_t start = TpchStartDay();
  // Leave 121 days of room so shipdate = orderdate + 1..121 stays inside
  // the canonical window.
  const int32_t end = TpchEndDay() - 121;
  const int64_t span = end - start;
  std::vector<OrderDraft> drafts(n);
  for (uint64_t i = 0; i < n; ++i) {
    OrderDraft& d = drafts[i];
    if (config.clustered_dates) {
      // Evenly spaced base date plus small jitter: monotone overall trend
      // with local disorder, i.e. *weak* clustering.
      const int64_t base = start + span * static_cast<int64_t>(i) /
                                       std::max<int64_t>(1, n - 1);
      const int64_t jitter = prng->NextInRange(-15, 15);
      d.orderdate = static_cast<int32_t>(
          std::clamp<int64_t>(base + jitter, start, end));
    } else {
      d.orderdate = static_cast<int32_t>(start + prng->NextInRange(0, span));
    }
    d.num_lineitems = static_cast<uint32_t>(prng->NextInRange(1, 7));
  }
  return drafts;
}

}  // namespace

Result<TpchDatabase> GenerateTpch(const TpchConfig& config) {
  if (config.scale_factor <= 0) {
    return Status::InvalidArgument("scale_factor must be positive");
  }
  Prng prng(config.seed);
  const uint64_t num_orders = config.num_orders();
  const uint64_t num_parts = config.num_parts();
  if (num_orders == 0 || num_parts == 0) {
    return Status::InvalidArgument("scale_factor too small: empty tables");
  }
  const std::vector<OrderDraft> drafts = DraftOrders(config, &prng);

  // --- part ---
  std::vector<int64_t> p_retailprice(num_parts);
  std::vector<int32_t> p_size(num_parts);
  for (uint64_t i = 0; i < num_parts; ++i) {
    // dbgen: retail price ~ 90000 + (key/10) % 20001 + 100 * (key % 1000),
    // here a uniform price in [900.00, 2100.00] dollars keeps the same
    // range without the arithmetic quirks.
    p_retailprice[i] = prng.NextInRange(90'000, 210'000);
    p_size[i] = static_cast<int32_t>(prng.NextInRange(1, 50));
  }

  // --- orders + lineitem ---
  uint64_t num_lineitems = 0;
  for (const OrderDraft& d : drafts) num_lineitems += d.num_lineitems;

  std::vector<int32_t> o_orderdate(num_orders);
  std::vector<int64_t> o_totalprice(num_orders);
  std::vector<int32_t> o_shippriority(num_orders);

  std::vector<int32_t> l_orderkey, l_partkey, l_quantity, l_discount, l_tax,
      l_shipdate, l_returnflag, l_linestatus;
  std::vector<int64_t> l_extendedprice;
  l_orderkey.reserve(num_lineitems);
  l_partkey.reserve(num_lineitems);
  l_quantity.reserve(num_lineitems);
  l_discount.reserve(num_lineitems);
  l_tax.reserve(num_lineitems);
  l_shipdate.reserve(num_lineitems);
  l_returnflag.reserve(num_lineitems);
  l_linestatus.reserve(num_lineitems);
  l_extendedprice.reserve(num_lineitems);

  for (uint64_t o = 0; o < num_orders; ++o) {
    const OrderDraft& d = drafts[o];
    o_orderdate[o] = d.orderdate;
    o_shippriority[o] = static_cast<int32_t>(prng.NextInRange(0, 4));
    int64_t total = 0;
    for (uint32_t li = 0; li < d.num_lineitems; ++li) {
      const int32_t partkey = static_cast<int32_t>(
          prng.NextBounded(num_parts));
      const int32_t quantity = static_cast<int32_t>(prng.NextInRange(1, 50));
      const int64_t extendedprice =
          static_cast<int64_t>(quantity) * p_retailprice[partkey] / 10;
      const int32_t discount = static_cast<int32_t>(prng.NextInRange(0, 10));
      const int32_t tax = static_cast<int32_t>(prng.NextInRange(0, 8));
      const int32_t shipdate =
          d.orderdate + static_cast<int32_t>(prng.NextInRange(1, 121));
      l_orderkey.push_back(static_cast<int32_t>(o));
      l_partkey.push_back(partkey);
      l_quantity.push_back(quantity);
      l_extendedprice.push_back(extendedprice);
      l_discount.push_back(discount);
      l_tax.push_back(tax);
      l_shipdate.push_back(shipdate);
      // dbgen semantics around the 1995-06-17 "current date": items
      // received by then carry R or A (returned / accepted), later ones
      // N; linestatus is F (fulfilled) up to that date, O (open) after.
      const int32_t current_date = DateToDayNumber(Date{1995, 6, 17});
      const int32_t receiptdate =
          shipdate + static_cast<int32_t>(prng.NextInRange(1, 30));
      if (receiptdate <= current_date) {
        l_returnflag.push_back(prng.NextBool(0.5) ? 2 : 0);  // R : A
      } else {
        l_returnflag.push_back(1);  // N
      }
      l_linestatus.push_back(shipdate > current_date ? 1 : 0);  // O : F
      total += extendedprice;
    }
    o_totalprice[o] = total;
  }

  TpchDatabase db;
  db.part = std::make_unique<Table>("part");
  NIPO_RETURN_NOT_OK(db.part->AddColumn("p_retailprice",
                                        std::move(p_retailprice)));
  NIPO_RETURN_NOT_OK(db.part->AddColumn("p_size", std::move(p_size)));

  db.orders = std::make_unique<Table>("orders");
  NIPO_RETURN_NOT_OK(db.orders->AddColumn("o_orderdate",
                                          std::move(o_orderdate)));
  NIPO_RETURN_NOT_OK(db.orders->AddColumn("o_totalprice",
                                          std::move(o_totalprice)));
  NIPO_RETURN_NOT_OK(db.orders->AddColumn("o_shippriority",
                                          std::move(o_shippriority)));

  db.lineitem = std::make_unique<Table>("lineitem");
  NIPO_RETURN_NOT_OK(db.lineitem->AddColumn("l_orderkey",
                                            std::move(l_orderkey)));
  NIPO_RETURN_NOT_OK(db.lineitem->AddColumn("l_partkey",
                                            std::move(l_partkey)));
  NIPO_RETURN_NOT_OK(db.lineitem->AddColumn("l_quantity",
                                            std::move(l_quantity)));
  NIPO_RETURN_NOT_OK(db.lineitem->AddColumn("l_extendedprice",
                                            std::move(l_extendedprice)));
  NIPO_RETURN_NOT_OK(db.lineitem->AddColumn("l_discount",
                                            std::move(l_discount)));
  NIPO_RETURN_NOT_OK(db.lineitem->AddColumn("l_tax", std::move(l_tax)));
  NIPO_RETURN_NOT_OK(db.lineitem->AddColumn("l_shipdate",
                                            std::move(l_shipdate)));
  NIPO_RETURN_NOT_OK(db.lineitem->AddColumn("l_returnflag",
                                            std::move(l_returnflag)));
  NIPO_RETURN_NOT_OK(db.lineitem->AddColumn("l_linestatus",
                                            std::move(l_linestatus)));
  return db;
}

Result<std::unique_ptr<Table>> GenerateLineitem(const TpchConfig& config) {
  NIPO_ASSIGN_OR_RETURN(TpchDatabase db, GenerateTpch(config));
  return std::move(db.lineitem);
}

}  // namespace nipo
