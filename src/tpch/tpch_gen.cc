#include "tpch/tpch_gen.h"

#include <algorithm>
#include <string>

/// \file tpch_gen.cc
/// Scaled deterministic lineitem generation: per-order orderdate/lineitem
/// structure, TPC-H value distributions for the columns the experiments
/// read, and assembly into a registered-ready Table.

namespace nipo {

namespace {

struct OrderDraft {
  int32_t orderdate = 0;
  uint32_t num_lineitems = 1;
};

/// SplitMix64-style derivation of a per-table seed stream from the base
/// seed; the tag keeps the streams disjoint.
uint64_t DeriveSeed(uint64_t seed, uint64_t tag) {
  uint64_t z = seed + tag * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Draws the per-order structure: the orderdate schedule and lineitem
/// counts. With clustered_dates, orderdates increase monotonically across
/// the table (bulk-load order); otherwise they are uniform random.
std::vector<OrderDraft> DraftOrders(const TpchConfig& config, Prng* prng) {
  const uint64_t n = config.num_orders();
  const int32_t start = TpchStartDay();
  // Leave 121 days of room so shipdate = orderdate + 1..121 stays inside
  // the canonical window.
  const int32_t end = TpchEndDay() - 121;
  const int64_t span = end - start;
  std::vector<OrderDraft> drafts(n);
  for (uint64_t i = 0; i < n; ++i) {
    OrderDraft& d = drafts[i];
    if (config.clustered_dates) {
      // Evenly spaced base date plus small jitter: monotone overall trend
      // with local disorder, i.e. *weak* clustering.
      const int64_t base = start + span * static_cast<int64_t>(i) /
                                       std::max<int64_t>(1, n - 1);
      const int64_t jitter = prng->NextInRange(-15, 15);
      d.orderdate = static_cast<int32_t>(
          std::clamp<int64_t>(base + jitter, start, end));
    } else {
      d.orderdate = static_cast<int32_t>(start + prng->NextInRange(0, span));
    }
    d.num_lineitems = static_cast<uint32_t>(prng->NextInRange(1, 7));
  }
  return drafts;
}

}  // namespace

Result<TpchDatabase> GenerateTpch(const TpchConfig& config) {
  if (config.scale_factor <= 0) {
    return Status::InvalidArgument("scale_factor must be positive");
  }
  const uint64_t num_orders = config.num_orders();
  const uint64_t num_parts = config.num_parts();
  if (num_orders == 0 || num_parts == 0) {
    return Status::InvalidArgument("scale_factor too small: empty tables");
  }
  // Keys are dense int32 surrogate row ids (the positional FK probe's
  // contract), so the parent tables must fit the key space -- and the
  // worst-case 7 lineitems per order must fit size_t row counts.
  constexpr uint64_t kMaxKey = 0x7fffffff;  // INT32_MAX
  if (num_orders > kMaxKey || num_parts > kMaxKey) {
    return Status::OutOfRange(
        "scale_factor overflows the int32 FK key space (num_orders=" +
        std::to_string(num_orders) + ", num_parts=" +
        std::to_string(num_parts) + ")");
  }

  // One shared stream by default (byte-identical to the historical
  // generator); per-table streams when the config opts in.
  Prng shared(config.seed);
  Prng draft_stream(DeriveSeed(config.seed, 1));
  Prng part_stream(DeriveSeed(config.seed, 2));
  Prng order_stream(DeriveSeed(config.seed, 3));
  Prng* draft_prng = config.per_table_seeds ? &draft_stream : &shared;
  Prng* part_prng = config.per_table_seeds ? &part_stream : &shared;
  Prng* line_prng = config.per_table_seeds ? &order_stream : &shared;

  const std::vector<OrderDraft> drafts = DraftOrders(config, draft_prng);

  // --- part ---
  std::vector<int64_t> p_retailprice(num_parts);
  std::vector<int32_t> p_size(num_parts);
  for (uint64_t i = 0; i < num_parts; ++i) {
    // dbgen: retail price ~ 90000 + (key/10) % 20001 + 100 * (key % 1000),
    // here a uniform price in [900.00, 2100.00] dollars keeps the same
    // range without the arithmetic quirks.
    p_retailprice[i] = part_prng->NextInRange(90'000, 210'000);
    p_size[i] = static_cast<int32_t>(part_prng->NextInRange(1, 50));
  }

  // --- orders + lineitem ---
  uint64_t num_lineitems = 0;
  for (const OrderDraft& d : drafts) num_lineitems += d.num_lineitems;

  std::vector<int32_t> o_orderdate(num_orders);
  std::vector<int64_t> o_totalprice(num_orders);
  std::vector<int32_t> o_shippriority(num_orders);

  std::vector<int32_t> l_orderkey, l_partkey, l_quantity, l_discount, l_tax,
      l_shipdate, l_returnflag, l_linestatus;
  std::vector<int64_t> l_extendedprice;
  l_orderkey.reserve(num_lineitems);
  l_partkey.reserve(num_lineitems);
  l_quantity.reserve(num_lineitems);
  l_discount.reserve(num_lineitems);
  l_tax.reserve(num_lineitems);
  l_shipdate.reserve(num_lineitems);
  l_returnflag.reserve(num_lineitems);
  l_linestatus.reserve(num_lineitems);
  l_extendedprice.reserve(num_lineitems);

  for (uint64_t o = 0; o < num_orders; ++o) {
    const OrderDraft& d = drafts[o];
    o_orderdate[o] = d.orderdate;
    o_shippriority[o] = static_cast<int32_t>(line_prng->NextInRange(0, 4));
    int64_t total = 0;
    for (uint32_t li = 0; li < d.num_lineitems; ++li) {
      const int32_t partkey = static_cast<int32_t>(
          line_prng->NextBounded(num_parts));
      const int32_t quantity =
          static_cast<int32_t>(line_prng->NextInRange(1, 50));
      const int64_t extendedprice =
          static_cast<int64_t>(quantity) * p_retailprice[partkey] / 10;
      const int32_t discount =
          static_cast<int32_t>(line_prng->NextInRange(0, 10));
      const int32_t tax = static_cast<int32_t>(line_prng->NextInRange(0, 8));
      const int32_t shipdate =
          d.orderdate + static_cast<int32_t>(line_prng->NextInRange(1, 121));
      l_orderkey.push_back(static_cast<int32_t>(o));
      l_partkey.push_back(partkey);
      l_quantity.push_back(quantity);
      l_extendedprice.push_back(extendedprice);
      l_discount.push_back(discount);
      l_tax.push_back(tax);
      l_shipdate.push_back(shipdate);
      // dbgen semantics around the 1995-06-17 "current date": items
      // received by then carry R or A (returned / accepted), later ones
      // N; linestatus is F (fulfilled) up to that date, O (open) after.
      const int32_t current_date = DateToDayNumber(Date{1995, 6, 17});
      const int32_t receiptdate =
          shipdate + static_cast<int32_t>(line_prng->NextInRange(1, 30));
      if (receiptdate <= current_date) {
        l_returnflag.push_back(line_prng->NextBool(0.5) ? 2 : 0);  // R : A
      } else {
        l_returnflag.push_back(1);  // N
      }
      l_linestatus.push_back(shipdate > current_date ? 1 : 0);  // O : F
      total += extendedprice;
    }
    o_totalprice[o] = total;
  }

  TpchDatabase db;
  db.part = std::make_unique<Table>("part");
  NIPO_RETURN_NOT_OK(db.part->AddColumn("p_retailprice",
                                        std::move(p_retailprice)));
  NIPO_RETURN_NOT_OK(db.part->AddColumn("p_size", std::move(p_size)));

  db.orders = std::make_unique<Table>("orders");
  NIPO_RETURN_NOT_OK(db.orders->AddColumn("o_orderdate",
                                          std::move(o_orderdate)));
  NIPO_RETURN_NOT_OK(db.orders->AddColumn("o_totalprice",
                                          std::move(o_totalprice)));
  NIPO_RETURN_NOT_OK(db.orders->AddColumn("o_shippriority",
                                          std::move(o_shippriority)));

  db.lineitem = std::make_unique<Table>("lineitem");
  NIPO_RETURN_NOT_OK(db.lineitem->AddColumn("l_orderkey",
                                            std::move(l_orderkey)));
  NIPO_RETURN_NOT_OK(db.lineitem->AddColumn("l_partkey",
                                            std::move(l_partkey)));
  NIPO_RETURN_NOT_OK(db.lineitem->AddColumn("l_quantity",
                                            std::move(l_quantity)));
  NIPO_RETURN_NOT_OK(db.lineitem->AddColumn("l_extendedprice",
                                            std::move(l_extendedprice)));
  NIPO_RETURN_NOT_OK(db.lineitem->AddColumn("l_discount",
                                            std::move(l_discount)));
  NIPO_RETURN_NOT_OK(db.lineitem->AddColumn("l_tax", std::move(l_tax)));
  NIPO_RETURN_NOT_OK(db.lineitem->AddColumn("l_shipdate",
                                            std::move(l_shipdate)));
  NIPO_RETURN_NOT_OK(db.lineitem->AddColumn("l_returnflag",
                                            std::move(l_returnflag)));
  NIPO_RETURN_NOT_OK(db.lineitem->AddColumn("l_linestatus",
                                            std::move(l_linestatus)));
  return db;
}

Result<std::unique_ptr<Table>> GenerateLineitem(const TpchConfig& config) {
  NIPO_ASSIGN_OR_RETURN(TpchDatabase db, GenerateTpch(config));
  return std::move(db.lineitem);
}

}  // namespace nipo
