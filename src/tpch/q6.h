#pragma once

#include <string>
#include <vector>

#include "exec/operators.h"
#include "storage/table.h"

/// \file q6.h
/// TPC-H Query 6 as used throughout the paper's evaluation:
///
///   SELECT sum(l_extendedprice * l_discount) AS revenue
///   FROM lineitem
///   WHERE l_shipdate >= DATE AND l_shipdate < DATE + 1 year
///     AND l_discount BETWEEN 0.06 - 0.01 AND 0.06 + 0.01
///     AND l_quantity < 24
///
/// Two variants appear in the paper:
///  - the *full* five-predicate form (both shipdate bounds; 120 = 5!
///    evaluation orders, Sections 5.2-5.4), and
///  - the *intro* four-predicate form with a single parameterized
///    "l_shipdate <= VALUE" bound (24 orders, Figure 1 and the
///    selectivity sweep of Figure 12).
///
/// Discounts are stored as integer hundredths, so "between 0.05 and 0.07"
/// compiles to 5 <= l_discount <= 7; dates are integer day numbers
/// (Section 2.1's date-to-timestamp conversion).

namespace nipo {

/// \brief Builds the five-predicate Q6 with shipdate in
/// [ship_lo_day, ship_hi_day).
std::vector<OperatorSpec> MakeQ6FullPredicates(int32_t ship_lo_day,
                                               int32_t ship_hi_day);

/// \brief Canonical full Q6: shipdate in [1994-01-01, 1995-01-01).
std::vector<OperatorSpec> MakeQ6FullPredicates();

/// \brief Builds the four-predicate intro variant with
/// "l_shipdate <= ship_value".
std::vector<OperatorSpec> MakeQ6IntroPredicates(int32_t ship_value);

/// \brief Payload columns of Q6's aggregate
/// (sum of l_extendedprice * l_discount).
std::vector<std::string> Q6PayloadColumns();

/// \brief Reference result: evaluates the operator chain directly
/// (no PMU, no vectorization) -- the executor's correctness oracle.
struct Q6Reference {
  uint64_t qualifying = 0;
  double revenue = 0.0;
};
Result<Q6Reference> ComputeQ6Reference(const Table& lineitem,
                                       const std::vector<OperatorSpec>& ops);

/// \brief The exact value v such that "column <= v" selects the smallest
/// fraction >= `fraction` of the table (an exact quantile; used by the
/// selectivity sweeps to dial in shipdate selectivities from 1e-6 to 1).
Result<int32_t> ValueForSelectivity(const Table& table,
                                    const std::string& column,
                                    double fraction);

/// \brief Measures the actual selectivity of "column <= value".
Result<double> MeasureSelectivity(const Table& table,
                                  const std::string& column, CompareOp op,
                                  double value);

}  // namespace nipo
