#pragma once

#include <cstdint>
#include <memory>

#include "common/date.h"
#include "common/prng.h"
#include "storage/table.h"

/// \file tpch_gen.h
/// Deterministic TPC-H-style data generator (the paper's data substrate).
///
/// The paper evaluates on dbgen output at scale factor 100 (~600 M
/// lineitems). This generator reproduces the *value distributions* the
/// experiments depend on, at configurable scale:
///
///  - l_quantity: uniform integers 1..50,
///  - l_discount: uniform hundredths 0..10 (0.00..0.10),
///  - l_tax: uniform hundredths 0..8,
///  - l_extendedprice: quantity * a part-dependent price, stored in cents,
///  - l_shipdate: orderdate + uniform 1..121 days,
///  - o_orderdate: spread over 1992-01-01 .. 1998-12-31.
///
/// Two layout properties matter to the paper and are reproduced exactly:
///
///  1. *Bulk-load weak clustering*: orders are generated with
///     non-decreasing orderdate, so lineitem, written in order of its
///     parent order, is weakly clustered on shipdate (Section 1: "real
///     life databases are bulk loaded and, hence, weakly clustered on the
///     date column").
///  2. *Co-clustering of lineitem and orders*: l_orderkey is the dense,
///     non-decreasing row id of the parent order, so an FK probe into
///     orders is near-sequential, while l_partkey is uniform, so a probe
///     into part is random (Section 5.6).
///
/// Keys are dense surrogate row ids (0-based), which the executor's
/// positional FK probe requires.

namespace nipo {

/// \brief Generator configuration. scale_factor 1.0 corresponds to 6M
/// lineitems / 1.5M orders / 200K parts (the dbgen ratios).
struct TpchConfig {
  double scale_factor = 0.1;
  uint64_t seed = 42;
  /// Lineitems per order are uniform 1..7 (dbgen's distribution), giving
  /// the canonical 4:1 lineitem:order ratio on average.
  bool clustered_dates = true;  ///< bulk-load weak clustering on dates
  /// When true, each table draws from its own seed stream (derived
  /// deterministically from `seed`), so regenerating one table at a
  /// different scale leaves the others' values untouched. Default false
  /// keeps the historical single-stream draw order byte-identical.
  bool per_table_seeds = false;

  uint64_t num_orders() const {
    return static_cast<uint64_t>(scale_factor * 1'500'000);
  }
  uint64_t num_parts() const {
    return static_cast<uint64_t>(scale_factor * 200'000);
  }
};

/// \brief The generated database: lineitem + its two dimension tables.
struct TpchDatabase {
  std::unique_ptr<Table> lineitem;
  std::unique_ptr<Table> orders;
  std::unique_ptr<Table> part;
};

/// \brief Generates all three tables. Deterministic in (config.seed,
/// scale). Lineitem columns: l_orderkey (int32), l_partkey (int32),
/// l_quantity (int32), l_extendedprice (int64, cents), l_discount (int32,
/// hundredths), l_tax (int32, hundredths), l_shipdate (int32, day number).
/// Orders columns: o_orderdate (int32 day number), o_totalprice (int64
/// cents), o_shippriority (int32 0..4). Part columns: p_retailprice
/// (int64 cents), p_size (int32 1..50).
Result<TpchDatabase> GenerateTpch(const TpchConfig& config);

/// \brief Generates only lineitem (cheaper when no joins are needed).
Result<std::unique_ptr<Table>> GenerateLineitem(const TpchConfig& config);

}  // namespace nipo
