#include "tpch/q6.h"

#include <algorithm>
#include <cmath>

#include "common/date.h"
#include "storage/column_view.h"

/// \file q6.cc
/// TPC-H Q6 operator chains (full and reduced predicate sets, with the
/// paper's parameter defaults), payload columns, and a scalar reference
/// evaluation for correctness checks.

namespace nipo {

std::vector<OperatorSpec> MakeQ6FullPredicates(int32_t ship_lo_day,
                                               int32_t ship_hi_day) {
  std::vector<OperatorSpec> ops;
  ops.push_back(OperatorSpec::Predicate(
      PredicateSpec{"l_shipdate", CompareOp::kGe,
                    static_cast<double>(ship_lo_day)}));
  ops.push_back(OperatorSpec::Predicate(
      PredicateSpec{"l_shipdate", CompareOp::kLt,
                    static_cast<double>(ship_hi_day)}));
  ops.push_back(OperatorSpec::Predicate(
      PredicateSpec{"l_discount", CompareOp::kGe, 5.0}));
  ops.push_back(OperatorSpec::Predicate(
      PredicateSpec{"l_discount", CompareOp::kLe, 7.0}));
  ops.push_back(OperatorSpec::Predicate(
      PredicateSpec{"l_quantity", CompareOp::kLt, 24.0}));
  return ops;
}

std::vector<OperatorSpec> MakeQ6FullPredicates() {
  return MakeQ6FullPredicates(DateToDayNumber(Date{1994, 1, 1}),
                              DateToDayNumber(Date{1995, 1, 1}));
}

std::vector<OperatorSpec> MakeQ6IntroPredicates(int32_t ship_value) {
  std::vector<OperatorSpec> ops;
  ops.push_back(OperatorSpec::Predicate(
      PredicateSpec{"l_shipdate", CompareOp::kLe,
                    static_cast<double>(ship_value)}));
  ops.push_back(OperatorSpec::Predicate(
      PredicateSpec{"l_quantity", CompareOp::kLt, 24.0}));
  ops.push_back(OperatorSpec::Predicate(
      PredicateSpec{"l_discount", CompareOp::kGe, 5.0}));
  ops.push_back(OperatorSpec::Predicate(
      PredicateSpec{"l_discount", CompareOp::kLe, 7.0}));
  return ops;
}

std::vector<std::string> Q6PayloadColumns() {
  return {"l_extendedprice", "l_discount"};
}

namespace {

/// Binds a ColumnView over a named column (plain or encoded alike, so
/// the reference paths keep working after EncodeTableColumns).
Result<ColumnView> BindView(const Table& table, const std::string& column) {
  NIPO_ASSIGN_OR_RETURN(const ColumnBase* col, table.GetColumn(column));
  return ColumnView::Bind(col);
}

}  // namespace

Result<Q6Reference> ComputeQ6Reference(const Table& lineitem,
                                       const std::vector<OperatorSpec>& ops) {
  // Resolve columns up front.
  struct Resolved {
    ColumnView view;
    CompareOp op;
    double value;
  };
  std::vector<Resolved> preds;
  for (const OperatorSpec& op : ops) {
    if (op.kind != OperatorSpec::Kind::kPredicate) {
      return Status::InvalidArgument(
          "Q6 reference only evaluates predicates");
    }
    NIPO_ASSIGN_OR_RETURN(ColumnView view,
                          BindView(lineitem, op.predicate.column));
    preds.push_back(Resolved{view, op.predicate.op, op.predicate.value});
  }
  NIPO_ASSIGN_OR_RETURN(ColumnView price,
                        BindView(lineitem, "l_extendedprice"));
  NIPO_ASSIGN_OR_RETURN(ColumnView discount,
                        BindView(lineitem, "l_discount"));
  Q6Reference ref;
  for (size_t row = 0; row < lineitem.num_rows(); ++row) {
    bool pass = true;
    for (const Resolved& p : preds) {
      if (!EvaluateCompare(p.view.ValueAsDouble(row), p.op, p.value)) {
        pass = false;
        break;
      }
    }
    if (pass) {
      ++ref.qualifying;
      ref.revenue += price.ValueAsDouble(row) * discount.ValueAsDouble(row);
    }
  }
  return ref;
}

Result<int32_t> ValueForSelectivity(const Table& table,
                                    const std::string& column,
                                    double fraction) {
  if (fraction < 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("fraction must be in [0, 1]");
  }
  NIPO_ASSIGN_OR_RETURN(ColumnView view, BindView(table, column));
  if (view.type() != DataType::kInt32) {
    return Status::InvalidArgument("ValueForSelectivity needs int32: " +
                                   column);
  }
  const size_t n = view.size();
  if (n == 0) return Status::InvalidArgument("empty column");
  std::vector<int32_t> sorted(n);
  for (size_t row = 0; row < n; ++row) {
    sorted[row] = static_cast<int32_t>(view.ValueAsInt64(row));
  }
  std::sort(sorted.begin(), sorted.end());
  if (fraction == 0.0) {
    return sorted.front() - 1;  // selects nothing
  }
  const size_t target =
      std::min<size_t>(n - 1,
                       static_cast<size_t>(std::ceil(fraction * n)) - 1);
  return sorted[target];
}

Result<double> MeasureSelectivity(const Table& table,
                                  const std::string& column, CompareOp op,
                                  double value) {
  NIPO_ASSIGN_OR_RETURN(ColumnView view, BindView(table, column));
  const size_t n = view.size();
  if (n == 0) return Status::InvalidArgument("empty column");
  uint64_t pass = 0;
  for (size_t row = 0; row < n; ++row) {
    if (EvaluateCompare(view.ValueAsDouble(row), op, value)) ++pass;
  }
  return static_cast<double>(pass) / static_cast<double>(n);
}

}  // namespace nipo
